// "Sleepers and workaholics" head to head: the paper's central taxonomy as
// a runnable demo. Two cells run the same Scenario-1 workload — one with a
// workaholic population (s = 0.05), one with heavy sleepers (s = 0.8) — and
// each cell ranks the strategies by measured effectiveness, reproducing the
// paper's §5 conclusions live. A third run shows the §8 adaptive server
// serving a *mixed* population without knowing who sleeps.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "exp/cell.h"
#include "util/table.h"

using namespace mobicache;

namespace {

struct Ranked {
  std::string name;
  double effectiveness;
  double hit_ratio;
};

std::vector<Ranked> RankStrategies(double sleep_probability) {
  std::vector<Ranked> out;
  for (StrategyKind kind : {StrategyKind::kTs, StrategyKind::kAt,
                            StrategyKind::kSig, StrategyKind::kNoCache}) {
    CellConfig config;
    config.model.s = sleep_probability;  // Scenario-1 defaults otherwise
    config.model.k = 20;
    config.strategy = kind;
    config.num_units = 20;
    config.hotspot_size = 20;
    config.seed = 99;
    Cell cell(config);
    if (!cell.Build().ok() || !cell.Run(50, 600).ok()) {
      std::cerr << "cell failed\n";
      std::exit(1);
    }
    const CellResult r = cell.result();
    out.push_back(Ranked{std::string(StrategyName(kind)), r.effectiveness,
                         r.hit_ratio});
  }
  std::sort(out.begin(), out.end(), [](const Ranked& a, const Ranked& b) {
    return a.effectiveness > b.effectiveness;
  });
  return out;
}

void PrintRanking(const char* title, const std::vector<Ranked>& ranking) {
  std::cout << title << "\n";
  TablePrinter table({"rank", "strategy", "effectiveness", "hit ratio"});
  int rank = 1;
  for (const Ranked& r : ranking) {
    table.AddRow({std::to_string(rank++), r.name,
                  TablePrinter::Num(r.effectiveness),
                  TablePrinter::Num(r.hit_ratio)});
  }
  table.RenderText(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Sleepers vs workaholics on the Scenario-1 workload\n\n";
  PrintRanking("Workaholics (s = 0):", RankStrategies(0.0));
  PrintRanking("Heavy sleepers (s = 0.8):", RankStrategies(0.8));

  // A mixed population served by one adaptive server: half the units nap
  // heavily, half barely — the per-item windows settle on a compromise that
  // no single static TS window provides.
  std::cout << "Mixed population under adaptive TS (Method 2):\n";
  CellConfig config;
  config.model.k = 20;
  config.strategy = StrategyKind::kAdaptiveTs;
  config.adaptive.feedback = AdaptiveFeedback::kMethod2;
  config.adaptive.initial_window = 8;
  config.adaptive.eval_period = 8;
  config.adaptive.step = 4;
  config.num_units = 20;
  config.hotspot_size = 20;
  config.seed = 99;
  // Renewal sleep gives a bursty mixed population: long awake runs with
  // occasional long naps.
  config.renewal_sleep = true;
  config.mean_awake_seconds = 120.0;
  config.mean_sleep_seconds = 60.0;
  Cell cell(config);
  if (!cell.Build().ok() || !cell.Run(100, 600).ok()) {
    std::cerr << "cell failed\n";
    return 1;
  }
  const CellResult r = cell.result();
  TablePrinter table({"hit ratio", "Bc(bits)", "effectiveness",
                      "measured sleep fraction"});
  table.AddRow({TablePrinter::Num(r.hit_ratio),
                TablePrinter::Num(r.avg_report_bits),
                TablePrinter::Num(r.effectiveness),
                TablePrinter::Num(r.measured_sleep_fraction)});
  table.RenderText(std::cout);
  return 0;
}
