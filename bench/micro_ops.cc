// Google-benchmark micro-benchmarks for the hot paths: the event loop,
// signature computation and maintenance, report building and client
// application, and the client cache. Run with --benchmark_filter=... as
// usual; emit the machine-readable record the perf trajectory tracks with
//   micro_ops --benchmark_out=BENCH_micro_ops.json --benchmark_out_format=json

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/at.h"
#include "core/cache.h"
#include "core/sig_strategy.h"
#include "core/ts.h"
#include "db/database.h"
#include "db/update_generator.h"
#include "sig/signature.h"
#include "sim/simulator.h"
#include "util/merge.h"
#include "util/random.h"

namespace mobicache {
namespace {

// Event-loop guard: schedule-then-dispatch throughput of the simulator's
// inline-callback heap. A regression here (e.g. reintroducing a per-event
// side-table lookup or allocation) slows every simulated cell in bench/.
void BM_SimulatorScheduleDispatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Simulator sim;
  double t = 0.0;
  uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      t += 0.25;
      sim.ScheduleAt(t, [&sink] { ++sink; });
    }
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_SimulatorScheduleDispatch)->Arg(16)->Arg(1024)->Arg(65536);

// Cancellation guard: half the scheduled events are cancelled before the
// run, exercising the O(1) tombstone path plus lazy heap removal.
void BM_SimulatorScheduleCancel(benchmark::State& state) {
  const int batch = 1024;
  Simulator sim;
  double t = 0.0;
  uint64_t sink = 0;
  std::vector<EventId> ids;
  ids.reserve(batch);
  for (auto _ : state) {
    ids.clear();
    for (int i = 0; i < batch; ++i) {
      t += 0.25;
      ids.push_back(sim.ScheduleAt(t, [&sink] { ++sink; }));
    }
    for (int i = 0; i < batch; i += 2) sim.Cancel(ids[i]);
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_SimulatorScheduleCancel);

void BM_ItemSignature(benchmark::State& state) {
  SignatureParams params;
  params.m = 1000;
  params.f = 10;
  params.g = 16;
  SignatureFamily family(1000, params, 1);
  uint64_t v = 0x1234;
  for (auto _ : state) {
    v = family.ItemSignature(v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ItemSignature);

// Cold path: every call regenerates the geometric membership stream (what
// SubsetsOf used to cost on *every* update fold and report diagnosis).
void BM_SubsetsOfCold(benchmark::State& state) {
  SignatureParams params;
  params.m = static_cast<uint32_t>(state.range(0));
  params.f = 10;
  params.g = 16;
  SignatureFamily family(1u << 20, params, 1);
  ItemId id = 0;
  for (auto _ : state) {
    auto subsets = family.ComputeSubsetsOf(id++);
    benchmark::DoNotOptimize(subsets);
  }
}
BENCHMARK(BM_SubsetsOfCold)->Arg(1000)->Arg(10000)->Arg(100000);

// Memoized path: repeat lookups over a small working set, as the server's
// per-update fold and the clients' per-report diagnosis actually issue them.
void BM_SubsetsOfMemoized(benchmark::State& state) {
  SignatureParams params;
  params.m = static_cast<uint32_t>(state.range(0));
  params.f = 10;
  params.g = 16;
  SignatureFamily family(1u << 20, params, 1);
  ItemId id = 0;
  for (auto _ : state) {
    const auto& subsets = family.SubsetsOf(id);
    id = (id + 1) % 256;
    benchmark::DoNotOptimize(subsets.data());
  }
}
BENCHMARK(BM_SubsetsOfMemoized)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ServerSignatureFold(benchmark::State& state) {
  Database db(100000, 1);
  SignatureParams params;
  params.m = 2000;
  params.f = 10;
  params.g = 16;
  SignatureFamily family(100000, params, 1);
  ServerSignatureState server(&family, &db);
  double t = 1.0;
  ItemId id = 0;
  for (auto _ : state) {
    db.ApplyUpdate(id, t);
    server.OnItemChanged(id);
    id = (id + 7919) % 100000;
    t += 0.001;
  }
}
BENCHMARK(BM_ServerSignatureFold);

void BM_SigDiagnose(benchmark::State& state) {
  Database db(10000, 1);
  SignatureParams params;
  params.m = 2000;
  params.f = 10;
  params.g = 16;
  SignatureFamily family(10000, params, 1);
  ServerSignatureState server(&family, &db);
  std::vector<ItemId> interest;
  for (ItemId i = 0; i < 50; ++i) interest.push_back(i);
  ClientSignatureView view(&family, interest);
  view.DiagnoseAndAdopt(server.Combined(), interest);
  double t = 1.0;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 10; ++i) {
      const ItemId id = static_cast<ItemId>(100 + (i * 31) % 9000);
      db.ApplyUpdate(id, t);
      server.OnItemChanged(id);
      t += 0.01;
    }
    state.ResumeTiming();
    auto invalid = view.DiagnoseAndAdopt(server.Combined(), interest);
    benchmark::DoNotOptimize(invalid);
  }
}
BENCHMARK(BM_SigDiagnose);

void BM_TsBuildReport(benchmark::State& state) {
  const uint64_t updates = static_cast<uint64_t>(state.range(0));
  Database db(1u << 20, 1);
  TsServerStrategy server(&db, 10.0, 10);
  Rng rng(2);
  double t = 0.0;
  for (uint64_t i = 0; i < updates; ++i) {
    t += 100.0 / static_cast<double>(updates);
    db.ApplyUpdate(static_cast<ItemId>(rng.NextUint64(1u << 20)), t);
  }
  uint64_t interval = 10;
  for (auto _ : state) {
    Report report = server.BuildReport(100.0, interval);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(updates));
}
BENCHMARK(BM_TsBuildReport)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AtClientApplyReport(benchmark::State& state) {
  const size_t cached = static_cast<size_t>(state.range(0));
  AtReport report;
  report.interval = 1;
  report.timestamp = 10.0;
  for (ItemId i = 0; i < 64; ++i) report.ids.push_back(i * 17);
  for (auto _ : state) {
    state.PauseTiming();
    ClientCache cache;
    AtClientManager manager;
    AtReport r0;
    r0.interval = 0;
    r0.timestamp = 0.0;
    manager.OnReport(Report(r0), &cache);
    for (ItemId i = 0; i < cached; ++i) cache.Put(i, i, 1.0);
    state.ResumeTiming();
    manager.OnReport(Report(report), &cache);
    benchmark::DoNotOptimize(cache);
  }
}
BENCHMARK(BM_AtClientApplyReport)->Arg(16)->Arg(256)->Arg(4096);

void BM_CachePutGet(benchmark::State& state) {
  ClientCache cache(1024);
  Rng rng(3);
  for (auto _ : state) {
    const ItemId id = static_cast<ItemId>(rng.NextUint64(4096));
    cache.Put(id, id, 1.0);
    benchmark::DoNotOptimize(cache.Get(id));
  }
}
BENCHMARK(BM_CachePutGet);

void BM_DatabaseUpdatedIn(benchmark::State& state) {
  Database db(1u << 16, 1);
  Rng rng(4);
  double t = 0.0;
  for (int i = 0; i < 100000; ++i) {
    t += 0.001;
    db.ApplyUpdate(static_cast<ItemId>(rng.NextUint64(1u << 16)), t);
  }
  for (auto _ : state) {
    auto items = db.UpdatedIn(t - 10.0, t);
    benchmark::DoNotOptimize(items);
  }
}
BENCHMARK(BM_DatabaseUpdatedIn);

// ---------------------------------------------------------------------------
// Client revalidation: seed algorithm vs the watermark cache.

// The seed implementation's per-report client work, restated against the
// current cache API: probe the cache once per report entry, then allocate,
// sort, and re-stamp the surviving cache one item at a time.
void LegacyTsApply(const TsReport& ts, ClientCache* cache) {
  for (const TsReportEntry& entry : ts.entries) {
    const CacheEntry* cached = cache->Peek(entry.id);
    if (cached != nullptr && cached->timestamp < entry.updated_at) {
      cache->Erase(entry.id);
    }
  }
  for (ItemId id : cache->Items()) cache->SetTimestamp(id, ts.timestamp);
}

TsReport BigTsReport() {
  TsReport ts;
  ts.interval = 0;
  ts.window = 1e12;
  // Entries predate every cached stamp, so applying the report steadily
  // invalidates nothing — the benchmark measures pure revalidation cost.
  for (ItemId i = 0; i < 100000; ++i) {
    ts.entries.push_back(TsReportEntry{i, 0.5});
  }
  return ts;
}

void FillCache(ClientCache* cache, size_t cached) {
  for (size_t i = 0; i < cached; ++i) {
    cache->Put(static_cast<ItemId>(i * 97 % 100000), i, 1.0);
  }
}

void BM_TsOnReportLegacy(benchmark::State& state) {
  TsReport ts = BigTsReport();
  ClientCache cache;
  FillCache(&cache, static_cast<size_t>(state.range(0)));
  double t = 10.0;
  for (auto _ : state) {
    ts.timestamp = t;
    t += 10.0;
    LegacyTsApply(ts, &cache);
    benchmark::DoNotOptimize(cache.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ts.entries.size()));
}
BENCHMARK(BM_TsOnReportLegacy)->Arg(10)->Arg(100)->Arg(1000);

void BM_TsOnReportWatermark(benchmark::State& state) {
  Report report(BigTsReport());
  TsReport& ts = std::get<TsReport>(report);
  TsClientManager manager(10);
  ClientCache cache;
  // Baseline report first: the initial OnReport drops the (empty) cache.
  ts.timestamp = 5.0;
  manager.OnReport(report, &cache);
  FillCache(&cache, static_cast<size_t>(state.range(0)));
  double t = 10.0;
  for (auto _ : state) {
    ++ts.interval;
    ts.timestamp = t;
    t += 10.0;
    manager.OnReport(report, &cache);
    benchmark::DoNotOptimize(cache.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ts.entries.size()));
}
BENCHMARK(BM_TsOnReportWatermark)->Arg(10)->Arg(100)->Arg(1000);

// ---------------------------------------------------------------------------
// Window queries: one flat journal scanned per query vs per-interval buckets
// with sealed digests. Arg is the query window in seconds (L = 10).

void FillJournal(Database* db) {
  Rng rng(4);
  double t = 0.0;
  for (int i = 0; i < 100000; ++i) {
    t += 0.001;
    db->ApplyUpdate(static_cast<ItemId>(rng.NextUint64(1u << 16)), t);
  }
}

void BM_DatabaseUpdatedInScanning(benchmark::State& state) {
  Database db(1u << 16, 1);
  FillJournal(&db);  // bucket width 0: one bucket, scanned per query
  const double window = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto items = db.UpdatedIn(100.0 - window, 100.0);
    benchmark::DoNotOptimize(items);
  }
}
BENCHMARK(BM_DatabaseUpdatedInScanning)->Arg(10)->Arg(50);

void BM_DatabaseUpdatedInBucketed(benchmark::State& state) {
  Database db(1u << 16, 1);
  db.SetJournalBucketWidth(10.0);
  FillJournal(&db);
  const double window = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto items = db.UpdatedIn(100.0 - window, 100.0);
    benchmark::DoNotOptimize(items);
  }
}
BENCHMARK(BM_DatabaseUpdatedInBucketed)->Arg(10)->Arg(50);

// Same bucketed query through the out-param overload with a reused buffer
// (how TsServerStrategy::BuildReport and the replay-side consumers call it):
// measures the query without the per-call vector allocation.
void BM_DatabaseUpdatedInReused(benchmark::State& state) {
  Database db(1u << 16, 1);
  db.SetJournalBucketWidth(10.0);
  FillJournal(&db);
  const double window = static_cast<double>(state.range(0));
  std::vector<UpdatedItem> out;
  for (auto _ : state) {
    db.UpdatedIn(100.0 - window, 100.0, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DatabaseUpdatedInReused)->Arg(10)->Arg(50);

// ---------------------------------------------------------------------------
// Update delivery: one scheduled event per update (the classic engine) vs
// the batched interval drain (UpdateGenerator batch mode through
// Database::ApplyUpdateBatch). Identical RNG streams and slab writes; the
// difference is pure scheduler traffic vs the tight staging loop. Arg is
// the database size — larger slabs push every update into a DRAM miss,
// which the batch path's prefetch distance hides. The journal is disabled
// so both modes measure the kernel, not bucket bookkeeping. ~1000 updates
// flow per iteration (total rate 1000/s, one simulated second advanced).

void BM_UpdatePerEvent(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  Simulator sim;
  Database db(n, 1);
  db.SetJournalEnabled(false);
  UpdateGenerator gen(&sim, &db, 1000.0 / static_cast<double>(n), 5);
  if (!gen.Start().ok()) state.SkipWithError("generator start failed");
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    sim.RunUntil(t);
    benchmark::DoNotOptimize(db.total_updates());
  }
  state.SetItemsProcessed(static_cast<int64_t>(gen.updates_generated()));
}
BENCHMARK(BM_UpdatePerEvent)->RangeMultiplier(10)->Range(1000, 1000000);

void BM_UpdateBatch(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  Simulator sim;
  Database db(n, 1);
  db.SetJournalEnabled(false);
  UpdateGenerator gen(&sim, &db, 1000.0 / static_cast<double>(n), 5);
  gen.EnableBatchMode();
  if (!gen.Start().ok()) state.SkipWithError("generator start failed");
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    gen.GenerateIntervalUpdates(t, /*inclusive=*/true);
    benchmark::DoNotOptimize(db.total_updates());
  }
  state.SetItemsProcessed(static_cast<int64_t>(gen.updates_generated()));
}
BENCHMARK(BM_UpdateBatch)->RangeMultiplier(10)->Range(1000, 1000000);

// ---------------------------------------------------------------------------
// Barrier replay selectors: the naive scan-every-source merge the replay
// used to run vs the loser tree that replaced it (util/merge.h). Arg is the
// number of time-sorted sources (shard logs); records are pre-generated so
// both selectors merge identical inputs.

std::vector<std::vector<double>> MergeSources(size_t k) {
  std::vector<std::vector<double>> sources(k);
  Rng rng(11);
  for (auto& src : sources) {
    src.resize(100000 / k);
    double t = 0.0;
    // Coarse grid: frequent cross-source ties, like simultaneous interval
    // ticks across shards.
    for (double& key : src) {
      t += 0.01 * static_cast<double>(rng.NextUint64(8));
      key = t;
    }
  }
  return sources;
}

void BM_KWayMergeLinearScan(benchmark::State& state) {
  const auto sources = MergeSources(static_cast<size_t>(state.range(0)));
  std::vector<size_t> cursor(sources.size());
  uint64_t merged = 0;
  for (auto _ : state) {
    cursor.assign(sources.size(), 0);
    double sum = 0.0;
    for (;;) {
      size_t best = sources.size();
      for (size_t r = 0; r < sources.size(); ++r) {
        if (cursor[r] >= sources[r].size()) continue;
        if (best == sources.size() ||
            sources[r][cursor[r]] < sources[best][cursor[best]]) {
          best = r;
        }
      }
      if (best == sources.size()) break;
      sum += sources[best][cursor[best]];
      ++cursor[best];
      ++merged;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(merged));
}
BENCHMARK(BM_KWayMergeLinearScan)->Arg(2)->Arg(8)->Arg(32);

void BM_KWayMergeLoserTree(benchmark::State& state) {
  const auto sources = MergeSources(static_cast<size_t>(state.range(0)));
  std::vector<size_t> cursor(sources.size());
  LoserTreeMerger merger;
  uint64_t merged = 0;
  for (auto _ : state) {
    cursor.assign(sources.size(), 0);
    merger.Reset(sources.size());
    for (size_t r = 0; r < sources.size(); ++r) {
      if (!sources[r].empty()) merger.SetHead(r, sources[r][0]);
    }
    merger.Build();
    double sum = 0.0;
    while (!merger.exhausted()) {
      const size_t r = merger.top();
      sum += merger.top_key();
      ++merged;
      const size_t next = ++cursor[r];
      merger.Advance(next < sources[r].size() ? sources[r][next]
                                              : LoserTreeMerger::kExhausted);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(merged));
}
BENCHMARK(BM_KWayMergeLoserTree)->Arg(2)->Arg(8)->Arg(32);

// ---------------------------------------------------------------------------
// Combined signatures: full recompute from the database (what an on-demand
// server pays per report) vs XOR-folding only the interval's dirty items.

void BM_SigRecomputeFull(benchmark::State& state) {
  Database db(50000, 1);
  SignatureParams params;
  params.m = 2000;
  params.f = 10;
  params.g = 16;
  SignatureFamily family(50000, params, 1);
  for (auto _ : state) {
    ServerSignatureState server(&family, &db);
    benchmark::DoNotOptimize(server.Combined());
  }
}
BENCHMARK(BM_SigRecomputeFull);

void BM_SigRecomputeIncremental(benchmark::State& state) {
  const int dirty = static_cast<int>(state.range(0));
  Database db(50000, 1);
  db.SetJournalBucketWidth(0.5);
  SignatureParams params;
  params.m = 2000;
  params.f = 10;
  params.g = 16;
  SignatureFamily family(50000, params, 1);
  ServerSignatureState server(&family, &db);
  double t = 1.0;
  ItemId id = 0;
  for (auto _ : state) {
    for (int i = 0; i < dirty; ++i) {
      db.ApplyUpdate(id, t);
      server.OnItemChanged(id);
      id = (id + 7919) % 50000;
      t += 0.001;
    }
    db.PruneJournalBefore(t - 1.0);
    benchmark::DoNotOptimize(server.Combined());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * dirty);
}
BENCHMARK(BM_SigRecomputeIncremental)->Arg(100);

}  // namespace
}  // namespace mobicache

BENCHMARK_MAIN();
