// Google-benchmark micro-benchmarks for the hot paths: signature
// computation and maintenance, report building and client application, and
// the client cache. Run with --benchmark_filter=... as usual.

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/at.h"
#include "core/cache.h"
#include "core/sig_strategy.h"
#include "core/ts.h"
#include "db/database.h"
#include "sig/signature.h"
#include "util/random.h"

namespace mobicache {
namespace {

void BM_ItemSignature(benchmark::State& state) {
  SignatureParams params;
  params.m = 1000;
  params.f = 10;
  params.g = 16;
  SignatureFamily family(1000, params, 1);
  uint64_t v = 0x1234;
  for (auto _ : state) {
    v = family.ItemSignature(v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ItemSignature);

void BM_SubsetsOf(benchmark::State& state) {
  SignatureParams params;
  params.m = static_cast<uint32_t>(state.range(0));
  params.f = 10;
  params.g = 16;
  SignatureFamily family(1u << 20, params, 1);
  ItemId id = 0;
  for (auto _ : state) {
    auto subsets = family.SubsetsOf(id++);
    benchmark::DoNotOptimize(subsets);
  }
}
BENCHMARK(BM_SubsetsOf)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ServerSignatureFold(benchmark::State& state) {
  Database db(100000, 1);
  SignatureParams params;
  params.m = 2000;
  params.f = 10;
  params.g = 16;
  SignatureFamily family(100000, params, 1);
  ServerSignatureState server(&family, &db);
  double t = 1.0;
  ItemId id = 0;
  for (auto _ : state) {
    db.ApplyUpdate(id, t);
    server.OnItemChanged(id);
    id = (id + 7919) % 100000;
    t += 0.001;
  }
}
BENCHMARK(BM_ServerSignatureFold);

void BM_SigDiagnose(benchmark::State& state) {
  Database db(10000, 1);
  SignatureParams params;
  params.m = 2000;
  params.f = 10;
  params.g = 16;
  SignatureFamily family(10000, params, 1);
  ServerSignatureState server(&family, &db);
  std::vector<ItemId> interest;
  for (ItemId i = 0; i < 50; ++i) interest.push_back(i);
  ClientSignatureView view(&family, interest);
  view.DiagnoseAndAdopt(server.Combined(), interest);
  double t = 1.0;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 10; ++i) {
      const ItemId id = static_cast<ItemId>(100 + (i * 31) % 9000);
      db.ApplyUpdate(id, t);
      server.OnItemChanged(id);
      t += 0.01;
    }
    state.ResumeTiming();
    auto invalid = view.DiagnoseAndAdopt(server.Combined(), interest);
    benchmark::DoNotOptimize(invalid);
  }
}
BENCHMARK(BM_SigDiagnose);

void BM_TsBuildReport(benchmark::State& state) {
  const uint64_t updates = static_cast<uint64_t>(state.range(0));
  Database db(1u << 20, 1);
  TsServerStrategy server(&db, 10.0, 10);
  Rng rng(2);
  double t = 0.0;
  for (uint64_t i = 0; i < updates; ++i) {
    t += 100.0 / static_cast<double>(updates);
    db.ApplyUpdate(static_cast<ItemId>(rng.NextUint64(1u << 20)), t);
  }
  uint64_t interval = 10;
  for (auto _ : state) {
    Report report = server.BuildReport(100.0, interval);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(updates));
}
BENCHMARK(BM_TsBuildReport)->Arg(100)->Arg(1000)->Arg(10000);

void BM_AtClientApplyReport(benchmark::State& state) {
  const size_t cached = static_cast<size_t>(state.range(0));
  AtReport report;
  report.interval = 1;
  report.timestamp = 10.0;
  for (ItemId i = 0; i < 64; ++i) report.ids.push_back(i * 17);
  for (auto _ : state) {
    state.PauseTiming();
    ClientCache cache;
    AtClientManager manager;
    AtReport r0;
    r0.interval = 0;
    r0.timestamp = 0.0;
    manager.OnReport(Report(r0), &cache);
    for (ItemId i = 0; i < cached; ++i) cache.Put(i, i, 1.0);
    state.ResumeTiming();
    manager.OnReport(Report(report), &cache);
    benchmark::DoNotOptimize(cache);
  }
}
BENCHMARK(BM_AtClientApplyReport)->Arg(16)->Arg(256)->Arg(4096);

void BM_CachePutGet(benchmark::State& state) {
  ClientCache cache(1024);
  Rng rng(3);
  for (auto _ : state) {
    const ItemId id = static_cast<ItemId>(rng.NextUint64(4096));
    cache.Put(id, id, 1.0);
    benchmark::DoNotOptimize(cache.Get(id));
  }
}
BENCHMARK(BM_CachePutGet);

void BM_DatabaseUpdatedIn(benchmark::State& state) {
  Database db(1u << 16, 1);
  Rng rng(4);
  double t = 0.0;
  for (int i = 0; i < 100000; ++i) {
    t += 0.001;
    db.ApplyUpdate(static_cast<ItemId>(rng.NextUint64(1u << 16)), t);
  }
  for (auto _ : state) {
    auto items = db.UpdatedIn(t - 10.0, t);
    benchmark::DoNotOptimize(items);
  }
}
BENCHMARK(BM_DatabaseUpdatedIn);

}  // namespace
}  // namespace mobicache

BENCHMARK_MAIN();
