// Reproduces Figure 8 (Scenario 6): workaholics on the 1M-item database.
// Expected shape (paper): AT and SIG practically indistinguishable, TS
// degrading rapidly with the update rate.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mobicache;
  SweepOptions defaults;
  defaults.points = 6;
  defaults.warmup_intervals = 30;
  defaults.measure_intervals = 150;
  defaults.num_units = 10;
  return RunFigureBench(PaperScenario::kScenario6,
                        {StrategyKind::kTs, StrategyKind::kAt,
                         StrategyKind::kSig},
                        argc, argv, defaults);
}
