// Megacell scaling bench: one large cell, sharded across threads by the
// interval-lockstep engine (exp/megacell.h). Sweeps the unit population
// across decades and the shard count across {1, 2, 4, ...}, verifying on the
// way that every shard count reproduces the shards=1 integer counters, and
// emits BENCH_megacell.json with per-run wall time, events/sec, the
// per-phase walls (server, shard critical path, barrier replay-merge — plus
// the replay's share of the run, the number the loser-tree merge targets),
// and the per-shard wall-time breakdown.
//
// The ISSUE's speedup criterion (>= 3x at shards=4 vs shards=1) applies to
// hosts with >= 4 hardware threads; the record always stores
// hardware_concurrency so a single-core CI container's numbers are not
// misread as a regression.
//
//   megacell [--units=1000,10000,100000,1000000] [--shards=1,2,4]
//            [--warmup=N] [--measure=N] [--seed=N] [--json=PATH]

#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/megacell.h"
#include "util/thread_pool.h"

namespace mobicache {
namespace {

struct RunRecord {
  uint64_t units = 0;
  uint32_t shards = 0;
  double build_seconds = 0.0;
  double run_seconds = 0.0;
  uint64_t sim_events = 0;
  double events_per_sec = 0.0;
  double server_wall_seconds = 0.0;
  double shard_phase_wall_seconds = 0.0;
  double replay_wall_seconds = 0.0;
  uint64_t replay_records = 0;
  /// replay_wall_seconds / run_seconds: how much of the run the barrier
  /// replay-merge cost, which is exactly what the loser-tree + pre-merge
  /// work is meant to shrink.
  double replay_share = 0.0;
  std::vector<double> shard_wall_seconds;
  double hit_ratio = 0.0;
  uint64_t queries_answered = 0;
  double speedup_vs_shards1 = 0.0;
  bool matches_shards1 = true;
};

struct BenchArgs {
  std::vector<uint64_t> units{1000, 10000, 100000, 1000000};
  std::vector<uint64_t> shards{1, 2, 4};
  uint64_t warmup = 2;
  uint64_t measure = 10;
  uint64_t seed = 42;
  std::string json_path = "BENCH_megacell.json";
};

uint64_t ParseU64(const char* flag, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || value[0] == '-' ||
      errno == ERANGE) {
    std::fprintf(stderr, "invalid value for %s: '%s'\n", flag, value.c_str());
    std::exit(2);
  }
  return parsed;
}

std::vector<uint64_t> ParseU64List(const char* flag, const char* csv) {
  std::vector<uint64_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(ParseU64(flag, item));
  }
  if (out.empty()) {
    std::fprintf(stderr, "%s needs at least one value\n", flag);
    std::exit(2);
  }
  return out;
}

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--units=", 8) == 0) {
      args.units = ParseU64List("--units", arg + 8);
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      args.shards = ParseU64List("--shards", arg + 9);
    } else if (std::strncmp(arg, "--warmup=", 9) == 0) {
      args.warmup = ParseU64("--warmup", arg + 9);
    } else if (std::strncmp(arg, "--measure=", 10) == 0) {
      args.measure = ParseU64("--measure", arg + 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = ParseU64("--seed", arg + 7);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      args.json_path = arg + 7;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--units=CSV] [--shards=CSV] "
                   "[--warmup=N] [--measure=N] [--seed=N] [--json=PATH]\n",
                   arg, argv[0]);
      std::exit(2);
    }
  }
  return args;
}

/// One cell configuration scaled to `units` MUs: a 10^4-item database with a
/// small shared hot spot keeps per-unit event rates paper-like (~1 query per
/// unit-interval) while the population carries the scaling load.
MegaCellConfig MakeConfig(uint64_t units, uint64_t shards, uint64_t seed) {
  MegaCellConfig mc;
  mc.cell.model.n = 10000;
  mc.cell.model.lambda = 0.01;
  mc.cell.model.mu = 1e-4;
  mc.cell.model.L = 10.0;
  mc.cell.model.s = 0.3;
  mc.cell.strategy = StrategyKind::kTs;
  mc.cell.num_units = units;
  mc.cell.hotspot_size = 8;
  mc.cell.seed = seed;
  mc.num_shards = static_cast<uint32_t>(shards);
  return mc;
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void WriteJson(const BenchArgs& args, const std::vector<RunRecord>& runs,
               std::ostream& os) {
  os << "{\n";
  os << "  \"name\": \"megacell\",\n";
  os << "  \"strategy\": \"ts\",\n";
  os << "  \"hardware_concurrency\": " << ThreadPool::DefaultThreadCount()
     << ",\n";
  os << "  \"warmup_intervals\": " << args.warmup << ",\n";
  os << "  \"measure_intervals\": " << args.measure << ",\n";
  os << "  \"seed\": " << args.seed << ",\n";
  os << "  \"runs\": [";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"units\": " << r.units << ", \"shards\": " << r.shards
       << ", \"build_seconds\": " << Num(r.build_seconds)
       << ", \"run_seconds\": " << Num(r.run_seconds)
       << ", \"sim_events\": " << r.sim_events
       << ", \"events_per_sec\": " << Num(r.events_per_sec)
       << ", \"server_wall_seconds\": " << Num(r.server_wall_seconds)
       << ", \"shard_phase_wall_seconds\": " << Num(r.shard_phase_wall_seconds)
       << ", \"replay_wall_seconds\": " << Num(r.replay_wall_seconds)
       << ", \"replay_records\": " << r.replay_records
       << ", \"replay_share\": " << Num(r.replay_share)
       << ", \"shard_wall_seconds\": [";
    for (size_t s = 0; s < r.shard_wall_seconds.size(); ++s) {
      os << (s == 0 ? "" : ", ") << Num(r.shard_wall_seconds[s]);
    }
    os << "], \"hit_ratio\": " << Num(r.hit_ratio)
       << ", \"queries_answered\": " << r.queries_answered
       << ", \"speedup_vs_shards1\": " << Num(r.speedup_vs_shards1)
       << ", \"matches_shards1\": " << (r.matches_shards1 ? "true" : "false")
       << "}";
  }
  os << (runs.empty() ? "]" : "\n  ]") << "\n}\n";
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  std::vector<RunRecord> runs;
  int exit_code = 0;

  for (uint64_t units : args.units) {
    double shards1_seconds = 0.0;
    CellResult shards1_result;
    bool have_baseline = false;
    for (uint64_t shards : args.shards) {
      if (shards == 0 || shards > units) {
        std::printf("units=%llu shards=%llu: skipped (invalid combination)\n",
                    static_cast<unsigned long long>(units),
                    static_cast<unsigned long long>(shards));
        continue;
      }
      MegaCell cell(MakeConfig(units, shards, args.seed));

      auto t0 = std::chrono::steady_clock::now();
      Status st = cell.Build();
      const double build_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (st.ok()) {
        t0 = std::chrono::steady_clock::now();
        st = cell.Run(args.warmup, args.measure);
      }
      if (!st.ok()) {
        std::fprintf(stderr, "units=%llu shards=%llu failed: %s\n",
                     static_cast<unsigned long long>(units),
                     static_cast<unsigned long long>(shards),
                     st.ToString().c_str());
        return 1;
      }
      RunRecord rec;
      rec.units = units;
      rec.shards = static_cast<uint32_t>(shards);
      rec.build_seconds = build_seconds;
      rec.run_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const CellResult result = cell.result();
      rec.sim_events = result.sim_events;
      rec.events_per_sec = rec.run_seconds > 0.0
                               ? static_cast<double>(result.sim_events) /
                                     rec.run_seconds
                               : 0.0;
      rec.server_wall_seconds = cell.server_wall_seconds();
      rec.shard_phase_wall_seconds = cell.shard_phase_wall_seconds();
      rec.replay_wall_seconds = cell.replay_wall_seconds();
      rec.replay_records = cell.replay_records();
      rec.replay_share = rec.run_seconds > 0.0
                             ? rec.replay_wall_seconds / rec.run_seconds
                             : 0.0;
      for (const MegaCellShardStats& ss : cell.shard_stats()) {
        rec.shard_wall_seconds.push_back(ss.wall_seconds);
      }
      rec.hit_ratio = result.hit_ratio;
      rec.queries_answered = result.queries_answered;
      if (!have_baseline) {
        shards1_seconds = rec.run_seconds;
        shards1_result = result;
        have_baseline = true;
        rec.speedup_vs_shards1 = 1.0;
      } else {
        rec.speedup_vs_shards1 =
            rec.run_seconds > 0.0 ? shards1_seconds / rec.run_seconds : 0.0;
        // The lockstep engine promises byte-identical statistics at any
        // shard count; the integer counters catch any violation for free.
        rec.matches_shards1 =
            result.queries_answered == shards1_result.queries_answered &&
            result.hits == shards1_result.hits &&
            result.misses == shards1_result.misses &&
            result.reports_heard == shards1_result.reports_heard &&
            result.reports_missed == shards1_result.reports_missed &&
            result.items_invalidated == shards1_result.items_invalidated;
        if (!rec.matches_shards1) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: units=%llu shards=%llu "
                       "diverges from the first shard count\n",
                       static_cast<unsigned long long>(units),
                       static_cast<unsigned long long>(shards));
          exit_code = 1;
        }
      }
      std::printf(
          "units=%-8llu shards=%-2u build %6.2fs  run %7.2fs  %.3g events/s  "
          "server %6.2fs  replay %4.1f%%  speedup %.2fx  h=%.4f%s\n",
          static_cast<unsigned long long>(units), rec.shards,
          rec.build_seconds, rec.run_seconds, rec.events_per_sec,
          rec.server_wall_seconds, 100.0 * rec.replay_share,
          rec.speedup_vs_shards1, rec.hit_ratio,
          rec.matches_shards1 ? "" : "  [MISMATCH]");
      std::fflush(stdout);
      runs.push_back(std::move(rec));
    }
  }

  std::ofstream out(args.json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", args.json_path.c_str());
    return 1;
  }
  WriteJson(args, runs, out);
  std::printf("bench record written to %s\n", args.json_path.c_str());
  return exit_code;
}

}  // namespace
}  // namespace mobicache

int main(int argc, char** argv) { return mobicache::Main(argc, argv); }
