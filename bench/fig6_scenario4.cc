// Reproduces Figure 6 (Scenario 4): update-intensive with a 1M-item database
// and f = 200. Expected shape (paper): SIG becomes the better choice over
// nearly the whole s range; AT's effectiveness is much lower than in
// Scenario 3; TS remains infeasible.
//
// Reproduction note: with physically exact ceil(log2 n) = 20-bit item ids,
// AT's report (632k changed items/interval) costs 12.6 Mb — MORE than the
// interval's 10 Mb capacity, so AT is infeasible too and only SIG and
// no-caching remain. The paper's AT curve is attainable only if its
// "log(n)" is read as the natural log (13.8 bits -> 8.7 Mb). Both readings
// are printed.

#include <iostream>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mobicache;
  SweepOptions defaults;
  defaults.points = 6;
  defaults.warmup_intervals = 10;
  defaults.measure_intervals = 60;
  defaults.num_units = 10;
  // SIG at Scenario 4's parameters faces ~10^5 updates/s over 10^6 items:
  // maintaining 20k combined signatures through that churn is impractical
  // to simulate (and the scheme is over-saturated: far more than f items
  // change per interval), so SIG is evaluated analytically here. AT at
  // paper scale simulates ~4*10^7 update events; it is feasible but slow,
  // so the exact-id pass (where it is infeasible anyway) skips it.
  defaults.analytic_only = {StrategyKind::kSig, StrategyKind::kAt};

  std::cout << "(a) physically exact item ids: ceil(log2 n) = 20 bits\n\n";
  int rc = RunFigureBench(PaperScenario::kScenario4,
                          {StrategyKind::kTs, StrategyKind::kAt,
                           StrategyKind::kSig, StrategyKind::kNoCache},
                          argc, argv, defaults);
  if (rc != 0) return rc;

  std::cout << "\n(b) the paper's evident reading: log(n) = ln(n) ~ 14 "
               "bits per id\n\n";
  // Re-run the analytic sweep with the natural-log id width.
  SweepOptions ln_options = ParseSweepArgs(argc, argv, defaults);
  ln_options.simulate = false;
  const StatusOr<SweepResult> result = RunScenarioSweepWithIdBits(
      PaperScenario::kScenario4,
      {StrategyKind::kTs, StrategyKind::kAt, StrategyKind::kSig,
       StrategyKind::kNoCache},
      ln_options, /*id_bits=*/14);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  PrintSweepTables(*result, std::cout);
  return 0;
}
