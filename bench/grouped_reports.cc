// Compressed-report ablation (§2 taxonomy / §10 "aggregate invalidation
// reports"): sweep the number of groups G. Fine partitions behave like
// plain AT with cheaper per-entry ids; coarse partitions shrink the report
// further but invalidate whole blocks (group-level false alarms), killing
// the hit ratio. The table shows the model and simulation side by side.

#include <iostream>
#include <string>

#include "analysis/model.h"
#include "exp/cell.h"
#include "util/table.h"

namespace mobicache {
namespace {

int Run() {
  ModelParams params;  // Scenario-1 shape...
  params.mu = 1e-3;    // ...with enough churn for groups to matter
  params.s = 0.3;

  std::cout << "Compressed (grouped) AT reports: sweeping the partition "
               "size G\n(n = 1000, mu = 1e-3, s = 0.3)\n\n";

  TablePrinter table({"G", "block", "h.model", "h.sim", "Bc.model", "Bc.sim",
                      "e.model", "e.sim"});

  // Plain AT reference row.
  {
    CellConfig config;
    config.model = params;
    config.strategy = StrategyKind::kAt;
    config.num_units = 20;
    config.hotspot_size = 20;
    config.seed = 21;
    Cell cell(config);
    if (!cell.Build().ok() || !cell.Run(40, 400).ok()) return 1;
    const CellResult r = cell.result();
    const StrategyEval model = EvalAt(params);
    table.AddRow({"AT", "1", TablePrinter::Num(model.hit_ratio),
                  TablePrinter::Num(r.hit_ratio),
                  TablePrinter::Num(model.report_bits),
                  TablePrinter::Num(r.avg_report_bits),
                  TablePrinter::Num(model.effectiveness),
                  TablePrinter::Num(r.effectiveness)});
  }

  for (uint32_t groups : {1000, 250, 64, 16, 4}) {
    CellConfig config;
    config.model = params;
    config.strategy = StrategyKind::kGroupedAt;
    config.num_groups = groups;
    config.num_units = 20;
    config.hotspot_size = 20;
    config.seed = 21;
    Cell cell(config);
    if (!cell.Build().ok() || !cell.Run(40, 400).ok()) return 1;
    const CellResult r = cell.result();
    const StrategyEval model = EvalGroupedAt(params, groups);
    table.AddRow({TablePrinter::Int(groups),
                  TablePrinter::Int((1000 + groups - 1) / groups),
                  TablePrinter::Num(model.hit_ratio),
                  TablePrinter::Num(r.hit_ratio),
                  TablePrinter::Num(model.report_bits),
                  TablePrinter::Num(r.avg_report_bits),
                  TablePrinter::Num(model.effectiveness),
                  TablePrinter::Num(r.effectiveness)});
  }
  table.RenderText(std::cout);
  std::cout << "\nG = n matches plain AT's hit ratio at identical id cost; "
               "shrinking G saves\nbits per entry but the block-level false "
               "alarms quickly dominate — on this\nworkload the compression "
               "never pays, matching the intuition that aggregate\nreports "
               "only help when co-grouped items are queried together.\n";
  return 0;
}

}  // namespace
}  // namespace mobicache

int main() { return mobicache::Run(); }
