// §4 model validation: runs the discrete-event simulator against the
// analytical model on a Scenario-1-shaped cell across strategies and sleep
// probabilities, with several seeds per point to put confidence intervals
// on the measured hit ratio and report size. Also probes model robustness
// by swapping the paper's per-interval Bernoulli sleep process for a
// renewal on/off process with the same effective sleep probability.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/model.h"
#include "exp/cell.h"
#include "util/stats.h"
#include "util/table.h"

namespace mobicache {
namespace {

struct Measured {
  OnlineStats hit;
  OnlineStats bc;
};

Measured RunSeeds(const CellConfig& base, int seeds, uint64_t warmup,
                  uint64_t measure) {
  Measured out;
  for (int i = 0; i < seeds; ++i) {
    CellConfig config = base;
    config.seed = base.seed + 7919ULL * static_cast<uint64_t>(i + 1);
    Cell cell(config);
    if (!cell.Build().ok() || !cell.Run(warmup, measure).ok()) {
      std::fprintf(stderr, "cell failed\n");
      std::exit(1);
    }
    const CellResult r = cell.result();
    out.hit.Add(r.hit_ratio);
    out.bc.Add(r.avg_report_bits);
  }
  return out;
}

int Run(int argc, char** argv) {
  int seeds = 5;
  uint64_t measure = 400;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0) seeds = std::stoi(arg.substr(8));
    if (arg.rfind("--measure=", 0) == 0) measure = std::stoull(arg.substr(10));
  }

  ModelParams params;  // Scenario-1 shaped
  params.k = 10;

  std::cout << "Model validation: analytic h/Bc vs simulation "
               "(Scenario-1 shape, k = 10, " << seeds << " seeds, +- is a "
               "95% CI)\n\n";

  TablePrinter table({"strategy", "s", "h.model", "h.sim", "+-", "Bc.model",
                      "Bc.sim", "+-", "e.model", "e.sim"});
  for (StrategyKind kind :
       {StrategyKind::kTs, StrategyKind::kAt, StrategyKind::kSig}) {
    for (double s : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      ModelParams p = params;
      p.s = s;
      StrategyEval model;
      switch (kind) {
        case StrategyKind::kTs:
          model = EvalTs(p);
          break;
        case StrategyKind::kAt:
          model = EvalAt(p);
          break;
        default:
          model = EvalSig(p);
          break;
      }
      CellConfig config;
      config.model = p;
      config.strategy = kind;
      config.num_units = 20;
      config.hotspot_size = 20;
      config.seed = 101;
      const Measured m = RunSeeds(config, seeds, 50, measure);
      const StrategyEval sim_eval =
          EvalFromMeasurements(p, m.hit.mean(), m.bc.mean());
      table.AddRow({std::string(StrategyName(kind)), TablePrinter::Num(s, 2),
                    TablePrinter::Num(model.hit_ratio),
                    TablePrinter::Num(m.hit.mean()),
                    TablePrinter::Num(m.hit.ConfidenceHalfWidth(), 2),
                    TablePrinter::Num(model.report_bits),
                    TablePrinter::Num(m.bc.mean()),
                    TablePrinter::Num(m.bc.ConfidenceHalfWidth(), 2),
                    TablePrinter::Num(model.effectiveness),
                    TablePrinter::Num(sim_eval.effectiveness)});
    }
  }
  table.RenderText(std::cout);

  std::cout << "\nSleep-process robustness: Bernoulli(s) vs renewal on/off "
               "at matched effective s (AT strategy)\n\n";
  TablePrinter rob({"mean_awake(s)", "mean_sleep(s)", "effective s",
                    "h.model", "h.bernoulli", "h.renewal"});
  for (const auto& [awake, sleep] : std::vector<std::pair<double, double>>{
           {200.0, 20.0}, {100.0, 50.0}, {50.0, 50.0}, {30.0, 90.0}}) {
    CellConfig renewal_config;
    renewal_config.model = params;
    renewal_config.strategy = StrategyKind::kAt;
    renewal_config.num_units = 20;
    renewal_config.hotspot_size = 20;
    renewal_config.renewal_sleep = true;
    renewal_config.mean_awake_seconds = awake;
    renewal_config.mean_sleep_seconds = sleep;
    renewal_config.seed = 33;

    // Matched-s Bernoulli cell.
    RenewalSleepModel probe(params.L, awake, sleep, 1);
    const double eff_s = probe.EffectiveSleepProbability();
    CellConfig bern_config = renewal_config;
    bern_config.renewal_sleep = false;
    bern_config.model.s = eff_s;

    const Measured renewal = RunSeeds(renewal_config, seeds, 50, measure);
    const Measured bern = RunSeeds(bern_config, seeds, 50, measure);
    ModelParams p = params;
    p.s = eff_s;
    rob.AddRow({TablePrinter::Num(awake, 3), TablePrinter::Num(sleep, 3),
                TablePrinter::Num(eff_s),
                TablePrinter::Num(AtHitRatio(p)),
                TablePrinter::Num(bern.hit.mean()),
                TablePrinter::Num(renewal.hit.mean())});
  }
  rob.RenderText(std::cout);
  std::cout << "\nNote: renewal sleep is burstier than Bernoulli at equal "
               "effective s\n(awake runs cluster), which is why AT, whose "
               "cache dies on any missed\nreport, does noticeably better "
               "under it.\n";
  return 0;
}

}  // namespace
}  // namespace mobicache

int main(int argc, char** argv) { return mobicache::Run(argc, argv); }
