// Shared driver for the figure-reproduction benches: argument parsing and
// the run-sweep-and-print-tables pipeline.

#ifndef MOBICACHE_BENCH_BENCH_COMMON_H_
#define MOBICACHE_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "analysis/scenarios.h"
#include "core/strategy.h"
#include "exp/sweep.h"

namespace mobicache {

/// Parses --points=N --measure=N --warmup=N --units=N --hotspot=N --seed=N
/// --threads=N --shards=N --no-sim --csv=PATH --json[=PATH] over the given
/// defaults.
/// Numeric flags reject non-numeric or overflowing values with a clear
/// message. Unknown flags abort with a usage message. `csv_path` (if any) is
/// returned through the optional out parameter; `json_path` likewise — a
/// bare `--json` yields "auto", which RunFigureBench resolves to
/// BENCH_<benchname>.json next to the working directory.
SweepOptions ParseSweepArgs(int argc, char** argv, SweepOptions defaults,
                            std::string* csv_path = nullptr,
                            std::string* json_path = nullptr);

/// Runs one paper figure: analytic curves plus (unless --no-sim) the
/// matching simulated series, printed as aligned tables. With --json, also
/// emits a machine-readable BenchRecord (see bench_json.h) capturing wall
/// time, events/sec, cells/sec, quiet-interval accounting, the sweep's heap
/// allocation count, and the configuration. Returns a process exit code.
int RunFigureBench(PaperScenario scenario,
                   const std::vector<StrategyKind>& strategies, int argc,
                   char** argv, SweepOptions defaults);

/// Global operator-new calls this process has made so far. bench_common.cc
/// installs a counting allocator (one relaxed atomic increment per call —
/// noise on build paths, invisible on the allocation-free hot paths);
/// RunFigureBench records the delta across the sweep so BENCH records track
/// allocation churn alongside throughput.
uint64_t BenchHeapAllocations();

}  // namespace mobicache

#endif  // MOBICACHE_BENCH_BENCH_COMMON_H_
