// SIG sizing ablation. Two questions the paper's evaluation leaves open:
//
//  1. The design parameter f must cover the number of items that actually
//     change between a client's signature baselines (>= n*mu*L for awake
//     clients). Several paper scenarios size f far below that, which makes
//     the analytic SIG curve unattainable: the simulated scheme
//     over-invalidates and its hit ratio collapses. This bench sweeps f at
//     fixed workload churn and shows the recovery — and the report-size
//     price (m grows linearly with f).
//
//  2. The operating threshold K: the Chernoff sizing uses K = 2, but
//     detection of genuinely changed items needs K < 1/(1 - 1/e) ~ 1.58;
//     low K raises false alarms, high K lets stale items survive (false
//     valids). Swept here with measured false-valid rates.

#include <iostream>

#include "analysis/model.h"
#include "exp/cell.h"
#include "sig/signature.h"
#include "util/table.h"

namespace mobicache {
namespace {

CellConfig BaseConfig() {
  CellConfig config;
  config.model.n = 1000;
  config.model.lambda = 0.1;
  config.model.mu = 2e-3;  // ~20 changed items per interval
  config.model.L = 10.0;
  config.model.s = 0.3;
  config.strategy = StrategyKind::kSig;
  config.num_units = 20;
  config.hotspot_size = 20;
  config.seed = 111;
  return config;
}

struct Audit {
  CellResult cell;
  uint64_t false_valids = 0;
  uint64_t hits = 0;
};

Audit RunAudited(const CellConfig& config) {
  Cell cell(config);
  if (!cell.Build().ok()) {
    std::cerr << "build failed\n";
    std::exit(1);
  }
  Audit audit;
  Database* db = cell.db();
  auto* counts = &audit;
  for (MobileUnit* unit : cell.units()) {
    unit->SetAnswerObserver([counts, db](ItemId id, uint64_t value,
                                         SimTime validity_ts, bool hit) {
      if (!hit) return;
      ++counts->hits;
      if (value != db->ValueAt(id, validity_ts)) ++counts->false_valids;
    });
  }
  if (!cell.Run(30, 300).ok()) {
    std::cerr << "run failed\n";
    std::exit(1);
  }
  audit.cell = cell.result();
  return audit;
}

int Run() {
  std::cout << "SIG sizing ablation (n = 1000, mu = 2e-3 -> ~20 changes per "
               "interval, s = 0.3)\n\n";

  {
    std::cout << "(1) Sweeping the design difference count f "
                 "(m = 6(f+1)(ln(1/delta)+ln n), K = 1.25)\n\n";
    TablePrinter table({"f", "m", "Bc(bits)", "hit ratio", "false-valid %",
                        "e.sim"});
    for (uint32_t f : {2, 5, 10, 20, 40, 80}) {
      CellConfig config = BaseConfig();
      config.model.f = f;
      const Audit a = RunAudited(config);
      const uint32_t m = SigSignatureCount(config.model);
      table.AddRow(
          {TablePrinter::Int(f), TablePrinter::Int(m),
           TablePrinter::Num(a.cell.avg_report_bits),
           TablePrinter::Num(a.cell.hit_ratio),
           TablePrinter::Num(a.hits == 0 ? 0.0
                                         : 100.0 *
                                               static_cast<double>(
                                                   a.false_valids) /
                                               static_cast<double>(a.hits),
                             3),
           TablePrinter::Num(a.cell.effectiveness)});
    }
    table.RenderText(std::cout);
    std::cout << "\nf below the per-interval churn (~20) floods the "
                 "syndrome with mismatches and\nthe hit ratio collapses — "
                 "this is why the paper's Scenario 2/4 SIG curves are\n"
                 "analytic idealizations (see EXPERIMENTS.md).\n\n";
  }

  {
    std::cout << "(2) Sweeping the operating threshold K (f = 40)\n\n";
    TablePrinter table(
        {"K", "hit ratio", "false-valid %", "invalidations/report"});
    for (double k_threshold : {1.05, 1.25, 1.45, 1.58, 1.80}) {
      CellConfig config = BaseConfig();
      config.model.f = 40;
      config.sig_k_threshold = k_threshold;
      const Audit a = RunAudited(config);
      const double inv_per_report =
          a.cell.reports_broadcast == 0
              ? 0.0
              : static_cast<double>(a.cell.items_invalidated) /
                    static_cast<double>(a.cell.reports_broadcast);
      table.AddRow(
          {TablePrinter::Num(k_threshold, 3),
           TablePrinter::Num(a.cell.hit_ratio),
           TablePrinter::Num(a.hits == 0 ? 0.0
                                         : 100.0 *
                                               static_cast<double>(
                                                   a.false_valids) /
                                               static_cast<double>(a.hits),
                             3),
           TablePrinter::Num(inv_per_report, 4)});
    }
    table.RenderText(std::cout);
    std::cout << "\nK > ~1.58 pushes the threshold above the expected "
                 "syndrome count of a\ngenuinely changed item: stale copies "
                 "start surviving (false valids), the one\nerror class the "
                 "paper's schemes are supposed to avoid.\n\n";
  }

  {
    std::cout << "(3) Extension: per-item threshold (count > gamma * "
                 "|subsets of i|) vs the\n    paper's global K*p*m "
                 "(f = 40)\n\n";
    TablePrinter table({"rule", "hit ratio", "false-valid %",
                        "invalidations/report"});
    struct Case {
      const char* name;
      bool per_item;
      double gamma;
      double k;
    };
    const Case cases[] = {
        {"global K=1.25", false, 0.0, 1.25},
        {"per-item gamma=0.70", true, 0.70, 1.25},
        {"per-item gamma=0.80", true, 0.80, 1.25},
        {"per-item gamma=0.90", true, 0.90, 1.25},
    };
    for (const Case& c : cases) {
      CellConfig config = BaseConfig();
      config.model.f = 40;
      config.sig_k_threshold = c.k;
      config.sig_per_item_threshold = c.per_item;
      config.sig_gamma = c.gamma;
      const Audit a = RunAudited(config);
      const double inv_per_report =
          a.cell.reports_broadcast == 0
              ? 0.0
              : static_cast<double>(a.cell.items_invalidated) /
                    static_cast<double>(a.cell.reports_broadcast);
      table.AddRow(
          {c.name, TablePrinter::Num(a.cell.hit_ratio),
           TablePrinter::Num(a.hits == 0 ? 0.0
                                         : 100.0 *
                                               static_cast<double>(
                                                   a.false_valids) /
                                               static_cast<double>(a.hits),
                             3),
           TablePrinter::Num(inv_per_report, 4)});
    }
    table.RenderText(std::cout);
    std::cout << "\nThe per-item rule exploits what the client already "
                 "knows (each item's exact\nsubset count): a changed item "
                 "mismatches ~all of its subsets, a valid one only\n"
                 "~63%, so a gamma between those separates cleanly and the "
                 "binomial-tail\nfalse-valids of the global rule disappear.\n";
  }
  return 0;
}

}  // namespace
}  // namespace mobicache

int main() { return mobicache::Run(); }
