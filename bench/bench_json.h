// Machine-readable bench output: every figure bench can emit a
// BENCH_<name>.json record (wall time, events/sec, cells/sec, and the
// configuration that produced them) so perf changes are tracked as data
// instead of anecdotes. The format is one flat JSON object per file;
// anything that parses JSON can diff two records.

#ifndef MOBICACHE_BENCH_BENCH_JSON_H_
#define MOBICACHE_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "util/status.h"

namespace mobicache {

/// One bench run's record.
struct BenchRecord {
  std::string name;          ///< Bench name, e.g. "fig6_scenario4".
  std::string scenario;      ///< Scenario label (empty for micro benches).
  double wall_seconds = 0.0;

  // Work accomplished.
  uint64_t sim_events = 0;   ///< Discrete events dispatched across all cells.
  uint64_t cells = 0;        ///< Simulation cells run.
  double events_per_sec = 0.0;
  double cells_per_sec = 0.0;

  // Quiet-server accounting, summed across the simulated cells: measured
  // intervals whose delivery found every unit asleep, and the subset the
  // server elided outright (always <= quiet_report_intervals).
  uint64_t quiet_report_intervals = 0;
  uint64_t quiet_skipped_intervals = 0;
  /// Global operator-new calls made across the sweep (see
  /// BenchHeapAllocations in bench_common.h). Steady-state broadcast work
  /// adds nothing here, so the count tracks build/teardown churn and
  /// catches allocation regressions on the hot paths.
  uint64_t heap_allocations = 0;

  // Configuration that produced the numbers.
  int threads = 0;           ///< Effective worker count.
  unsigned hardware_concurrency = 0;
  int points = 0;
  uint64_t num_units = 0;
  uint64_t warmup_intervals = 0;
  uint64_t measure_intervals = 0;
  uint64_t seed = 0;
  bool simulate = true;
  /// Intra-cell shards per simulated cell (SweepOptions::shards).
  int shards = 1;
  /// Batched-apply kernel the SIMD dispatcher resolved for this process
  /// ("scalar", "sse2", "avx2"); CI asserts it under MOBICACHE_SIMD.
  std::string simd_kernel;

  // Per-phase wall shares, summed across the simulated cells (see
  // exp/megacell.h for the phase definitions): the serial server phases,
  // the parallel shard phases' critical path, and the barrier
  // replay-merges. server + shard + replay approximates wall_seconds minus
  // build time when cells run serially. replay_records counts the log
  // records the barriers merged.
  double server_seconds = 0.0;
  double shard_seconds = 0.0;
  double replay_seconds = 0.0;
  uint64_t replay_records = 0;
  /// Wall time draining the batched update stream, summed across cells — a
  /// sub-account of server_seconds (pumps run inside the server phase), so
  /// 0 <= update_seconds <= server_seconds. updates_applied counts updates
  /// applied to the cells' databases (either delivery mode).
  double update_seconds = 0.0;
  uint64_t updates_applied = 0;
  /// Sum of the per-cell journal byte high-water marks — an upper bound on
  /// the sweep's aggregate journal footprint had every cell peaked at once.
  /// Per-cell peaks and retention classes live in the breakdown entries.
  uint64_t journal_bytes_peak = 0;

  /// Optional wall-time breakdown: one labelled timing per simulated cell
  /// (sweep benches label by "<strategy>@x=<point>") or per shard/phase
  /// (the megacell bench). Deterministic order; empty when not recorded.
  /// Sweep-bench entries carry the cell's per-phase split alongside its
  /// total (phase fields are zero for breakdowns that predate them).
  struct Breakdown {
    std::string label;
    double seconds = 0.0;
    double server_seconds = 0.0;
    double shard_seconds = 0.0;
    double replay_seconds = 0.0;
    uint64_t replay_records = 0;
    double update_seconds = 0.0;
    uint64_t updates_applied = 0;
    /// Journal retention class the cell's strategy armed ("none", "digest",
    /// "full") and the journal's byte high-water mark over the cell's run.
    std::string retention_class = "full";
    uint64_t journal_bytes_peak = 0;
  };
  std::vector<Breakdown> breakdown;
};

/// Fills the work/config fields from a finished sweep + its options and
/// timing. `threads_used` is the effective count (after resolving 0 to the
/// hardware default).
BenchRecord MakeBenchRecord(const std::string& name,
                            const std::string& scenario,
                            const SweepResult& result,
                            const SweepOptions& options, int threads_used,
                            double wall_seconds);

/// The record as a JSON object (pretty-printed, stable key order).
std::string BenchRecordToJson(const BenchRecord& record);

/// Writes BenchRecordToJson(record) to `path`.
Status WriteBenchJson(const BenchRecord& record, const std::string& path);

}  // namespace mobicache

#endif  // MOBICACHE_BENCH_BENCH_JSON_H_
