// §9 study — report delivery across network environments. The invalidation
// report concept is orthogonal to the network; what changes is addressing
// and timing:
//
//  * ideal     — reservation MAC (PRMA/MACAW): exact timing; clients need
//                clock sync but only listen for the report itself.
//  * multicast — CSMA/CDPD with a multicast report address: contention
//                jitter delays delivery, but doze-mode address filtering
//                means clients still only pay for the report airtime.
//  * csma      — contention jitter without address filtering: clients must
//                listen from T_i until the report arrives.
//
// Metrics: client listen energy (seconds per heard report), query latency,
// and hit ratio (which must be invariant — delivery timing does not change
// report *content*).

#include <iostream>

#include "exp/cell.h"
#include "net/delivery.h"
#include "net/energy.h"
#include "util/table.h"

namespace mobicache {
namespace {

int Run() {
  std::cout << "Report delivery substrates (S9) on the Scenario-1 workload "
               "(s = 0.3)\n\n";
  TablePrinter table({"delivery", "mean jitter(s)", "needs clock sync",
                      "listen s/report", "mean latency(s)", "hit ratio",
                      "radio J/unit/hour"});

  struct Case {
    DeliveryModelKind kind;
    double jitter;
  };
  const Case cases[] = {
      {DeliveryModelKind::kIdealPeriodic, 0.0},
      {DeliveryModelKind::kMulticast, 0.5},
      {DeliveryModelKind::kMulticast, 2.0},
      {DeliveryModelKind::kCsmaJitter, 0.5},
      {DeliveryModelKind::kCsmaJitter, 2.0},
  };

  for (const Case& c : cases) {
    CellConfig config;
    config.model.s = 0.3;
    config.model.k = 10;
    config.strategy = StrategyKind::kTs;
    config.num_units = 20;
    config.hotspot_size = 20;
    config.delivery = c.kind;
    config.mean_jitter_seconds = c.jitter;
    config.seed = 91;
    Cell cell(config);
    if (!cell.Build().ok() || !cell.Run(50, 400).ok()) {
      std::cerr << "cell failed\n";
      return 1;
    }
    const CellResult r = cell.result();
    const double listen_per_report =
        r.reports_heard == 0
            ? 0.0
            : r.listen_seconds_total / static_cast<double>(r.reports_heard);
    DeliveryModel probe(c.kind, c.jitter, 1);
    // Radio energy per unit-hour: listening + uplink transmissions, with
    // awake-idle and doze time split from the sleep statistics.
    const double span =
        400.0 * config.model.L * static_cast<double>(config.num_units);
    const double awake = static_cast<double>(r.reports_heard) *
                         config.model.L;  // heard == awake intervals
    const double tx_seconds =
        static_cast<double>(r.channel.uplink_query_bits) / config.model.W;
    const EnergyBreakdown energy = ComputeClientEnergy(
        EnergyModel{}, r.listen_seconds_total, tx_seconds, awake, span);
    const double joules_per_unit_hour =
        energy.total_joules() / span * 3600.0;
    table.AddRow({DeliveryModelName(c.kind), TablePrinter::Num(c.jitter, 3),
                  probe.RequiresTimeSync() ? "yes" : "no",
                  TablePrinter::Num(listen_per_report, 4),
                  TablePrinter::Num(r.mean_answer_latency, 4),
                  TablePrinter::Num(r.hit_ratio),
                  TablePrinter::Num(joules_per_unit_hour, 4)});
  }
  table.RenderText(std::cout);
  std::cout << "\nMulticast addressing keeps listen energy at the ideal "
               "level without clock\nsynchronization — jitter only shows up "
               "as answer latency. Raw CSMA pays the\njitter as awake-"
               "listening energy on every report.\n";
  return 0;
}

}  // namespace
}  // namespace mobicache

int main() { return mobicache::Run(); }
