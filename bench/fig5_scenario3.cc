// Reproduces Figure 5 (Scenario 3): update-intensive workload (mu = lambda).
// TS is unusable (its report exceeds the interval capacity and is reported
// as infeasible). Expected shape (paper): AT dominates SIG; no-caching
// overtakes caching near s ~ 0.8.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mobicache;
  SweepOptions defaults;
  defaults.points = 11;
  defaults.warmup_intervals = 50;
  defaults.measure_intervals = 300;
  return RunFigureBench(PaperScenario::kScenario3,
                        {StrategyKind::kTs, StrategyKind::kAt,
                         StrategyKind::kSig, StrategyKind::kNoCache},
                        argc, argv, defaults);
}
