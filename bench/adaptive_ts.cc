// §8 ablation — adaptive invalidation reports. The motivating workload mixes
// the two §8 pathologies inside one hot spot:
//
//  * "cold favourites": items that never change but are queried constantly
//    by a sleepy population — static TS keeps dropping them after long naps
//    (uplink waste); the adaptive server should grow their windows.
//  * "churners": items that change every few seconds — static TS reports
//    them endlessly (report waste) although every query misses anyway; the
//    adaptive server should shrink their windows to zero.
//
// Compared: static TS at several window sizes k, adaptive TS with feedback
// Method 1 (piggybacked hit timestamps) and Method 2 (uplink deltas).
// Metric: total channel bits per answered query — the paper's currency —
// plus its report/uplink split and the resulting hit ratio.

#include <iostream>
#include <string>

#include "core/adaptive.h"
#include "exp/cell.h"
#include "util/table.h"

namespace mobicache {
namespace {

constexpr uint64_t kN = 1000;
constexpr uint64_t kHotspot = 20;  // items 0..19: units share this hot spot

// Per-item update rates: the shared hot spot's first half never changes,
// its second half churns; the rest of the database updates slowly.
std::vector<double> WorkloadRates() {
  std::vector<double> rates(kN, 1e-4);
  for (uint64_t i = 0; i < kHotspot / 2; ++i) rates[i] = 0.0;     // favourites
  for (uint64_t i = kHotspot / 2; i < kHotspot; ++i) rates[i] = 0.05;  // churners
  return rates;
}

CellConfig BaseConfig() {
  CellConfig config;
  config.model.n = kN;
  config.model.lambda = 0.1;
  config.model.L = 10.0;
  config.model.s = 0.6;  // sleepers
  config.strategy = StrategyKind::kTs;
  config.num_units = 20;
  config.hotspot_size = kHotspot;
  config.update_rates = WorkloadRates();
  config.seed = 77;
  return config;
}

struct RowResult {
  CellResult cell;
  double bits_per_query = 0.0;
};

struct WindowSnapshot {
  double favourites = 0.0;
  double churners = 0.0;
};

RowResult RunOne(CellConfig config, WindowSnapshot* windows = nullptr) {
  Cell cell(config);
  // Long warm-up so the adaptive controller reaches steady state.
  if (!cell.Build().ok() || !cell.Run(1000, 1000).ok()) {
    std::cerr << "cell failed\n";
    std::exit(1);
  }
  if (windows != nullptr) {
    auto* ats =
        dynamic_cast<AdaptiveTsServerStrategy*>(cell.server()->strategy());
    if (ats != nullptr) {
      for (uint64_t i = 0; i < kHotspot / 2; ++i) {
        windows->favourites += static_cast<double>(ats->WindowOf(
                                   static_cast<ItemId>(i))) /
                               (kHotspot / 2.0);
        windows->churners += static_cast<double>(ats->WindowOf(
                                 static_cast<ItemId>(i + kHotspot / 2))) /
                             (kHotspot / 2.0);
      }
    }
  }
  RowResult out;
  out.cell = cell.result();
  out.bits_per_query =
      out.cell.queries_answered == 0
          ? 0.0
          : static_cast<double>(out.cell.channel.total_bits()) /
                static_cast<double>(out.cell.queries_answered);
  return out;
}

void AddRow(TablePrinter& table, const std::string& name, const RowResult& r) {
  table.AddRow({name, TablePrinter::Num(r.cell.hit_ratio),
                TablePrinter::Num(r.cell.avg_report_bits),
                TablePrinter::Int(r.cell.channel.uplink_query_bits),
                TablePrinter::Num(r.bits_per_query, 5)});
}

int Run() {
  std::cout
      << "Adaptive TS (S8): per-item windows vs static TS\n"
         "Workload: 10 never-changing favourites + 10 fast churners in a "
         "shared hot spot,\nsleepy population (s = 0.6), 1000 warm-up + "
         "1000 measured intervals\n\n";

  TablePrinter table({"strategy", "hit ratio", "Bc.sim(bits)",
                      "uplink bits", "bits/query"});

  for (uint64_t k : {4, 16, 64, 256}) {
    CellConfig config = BaseConfig();
    config.model.k = k;
    AddRow(table, "TS k=" + std::to_string(k), RunOne(config));
  }

  for (AdaptiveFeedback feedback :
       {AdaptiveFeedback::kMethod1, AdaptiveFeedback::kMethod2}) {
    CellConfig config = BaseConfig();
    config.strategy = StrategyKind::kAdaptiveTs;
    config.adaptive.initial_window = 16;
    config.adaptive.max_window = 256;
    config.adaptive.eval_period = 8;
    config.adaptive.step = 8;
    config.adaptive.feedback = feedback;
    WindowSnapshot windows;
    AddRow(table,
           feedback == AdaptiveFeedback::kMethod1 ? "ATS method-1"
                                                  : "ATS method-2",
           RunOne(config, &windows));
    std::printf("  (final mean windows: favourites %.0f, churners %.0f)\n",
                windows.favourites, windows.churners);
  }
  table.RenderText(std::cout);

  std::cout
      << "\nReading: static TS picks one window for *all* items; the "
         "adaptive server\nassigns them per item and stops reporting "
         "unqueried items altogether, which\ncuts the report to a fraction "
         "of any static TS while matching the best\nstatically-tuned "
         "bits/query — without knowing the workload in advance.\n"
         "Method 1 estimates per-client hit ratios from piggybacked "
         "timestamps, but at\nthe paper's bT = 512 those piggyback bits "
         "are expensive (visible in the\nuplink column); Method 2 is free "
         "and coarser (its gain hill-climb makes\nwindows wander, costing "
         "some hit ratio). This mirrors the paper's own\ncost ranking of "
         "the two methods.\n";
  return 0;
}

}  // namespace
}  // namespace mobicache

int main() { return mobicache::Run(); }
