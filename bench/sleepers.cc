// Sleeper-population scaling bench: one classic (unsharded) cell swept
// across sleep probability s and population size, measuring how many
// discrete events the engine dispatches and how fast. The point of the
// sleep fast-forward + batched-arrival engine is that a sleeping unit costs
// ~zero events, so dispatched events should track *awake* work, not
// units x intervals.
//
// Each record carries `baseline_event_model`: the event count the
// per-interval engine would have dispatched for the same run (one ticker
// event per unit-interval plus one heap event per query arrival,
// extrapolated from the measured arrival count; server-side events are
// identical in both engines and excluded). `events_eliminated` is the model
// minus the actual dispatch count — ~0 when run against a per-interval
// engine, and ~the sleeper share of the workload after fast-forwarding.
//
//   sleepers [--units=10000,100000,1000000] [--s=0.5,0.9,0.99]
//            [--warmup=N] [--measure=N] [--seed=N] [--json=PATH]
//
// Defaults follow the paper's methodology (5 warm-up + 60 measured
// intervals, the same run length as the golden and megacell tests).

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/cell.h"

namespace mobicache {
namespace {

struct RunRecord {
  uint64_t units = 0;
  double s = 0.0;
  double build_seconds = 0.0;
  double run_seconds = 0.0;
  /// Wall time in the server's broadcast path (build/elide + fan-out),
  /// warmup included — the quiet-elision win shows up here: at high s most
  /// intervals are elided and server_seconds collapses toward zero.
  double server_seconds = 0.0;
  uint64_t sim_events = 0;
  double events_per_sec = 0.0;
  uint64_t baseline_event_model = 0;
  int64_t events_eliminated = 0;
  /// Measured intervals nobody heard, and the subset the server elided
  /// outright (always <= quiet_report_intervals).
  uint64_t quiet_report_intervals = 0;
  uint64_t quiet_skipped_intervals = 0;
  double hit_ratio = 0.0;
  uint64_t queries_answered = 0;
  double measured_sleep_fraction = 0.0;
};

struct BenchArgs {
  std::vector<uint64_t> units{10000, 100000, 1000000};
  std::vector<double> sleep_probs{0.5, 0.9, 0.99};
  uint64_t warmup = 5;
  uint64_t measure = 60;
  uint64_t seed = 42;
  std::string json_path = "BENCH_sleepers.json";
};

uint64_t ParseU64(const char* flag, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || value[0] == '-' ||
      errno == ERANGE) {
    std::fprintf(stderr, "invalid value for %s: '%s'\n", flag, value.c_str());
    std::exit(2);
  }
  return parsed;
}

double ParseProb(const char* flag, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
      parsed < 0.0 || parsed > 1.0) {
    std::fprintf(stderr, "invalid value for %s: '%s'\n", flag, value.c_str());
    std::exit(2);
  }
  return parsed;
}

template <typename T, typename Parse>
std::vector<T> ParseList(const char* flag, const char* csv, Parse parse) {
  std::vector<T> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(parse(flag, item));
  }
  if (out.empty()) {
    std::fprintf(stderr, "%s needs at least one value\n", flag);
    std::exit(2);
  }
  return out;
}

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--units=", 8) == 0) {
      args.units = ParseList<uint64_t>("--units", arg + 8, ParseU64);
    } else if (std::strncmp(arg, "--s=", 4) == 0) {
      args.sleep_probs = ParseList<double>("--s", arg + 4, ParseProb);
    } else if (std::strncmp(arg, "--warmup=", 9) == 0) {
      args.warmup = ParseU64("--warmup", arg + 9);
    } else if (std::strncmp(arg, "--measure=", 10) == 0) {
      args.measure = ParseU64("--measure", arg + 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      args.seed = ParseU64("--seed", arg + 7);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      args.json_path = arg + 7;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--units=CSV] [--s=CSV] "
                   "[--warmup=N] [--measure=N] [--seed=N] [--json=PATH]\n",
                   arg, argv[0]);
      std::exit(2);
    }
  }
  return args;
}

/// Same workload shape as the megacell bench (10^4-item database, small
/// shared hot spot, ~0.8 queries per awake unit-interval) with s swept.
CellConfig MakeConfig(uint64_t units, double s, uint64_t seed) {
  CellConfig cc;
  cc.model.n = 10000;
  cc.model.lambda = 0.01;
  cc.model.mu = 1e-4;
  cc.model.L = 10.0;
  cc.model.s = s;
  cc.strategy = StrategyKind::kTs;
  cc.num_units = units;
  cc.hotspot_size = 8;
  cc.seed = seed;
  return cc;
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void WriteJson(const BenchArgs& args, const std::vector<RunRecord>& runs,
               std::ostream& os) {
  os << "{\n";
  os << "  \"name\": \"sleepers\",\n";
  os << "  \"strategy\": \"ts\",\n";
  os << "  \"warmup_intervals\": " << args.warmup << ",\n";
  os << "  \"measure_intervals\": " << args.measure << ",\n";
  os << "  \"seed\": " << args.seed << ",\n";
  os << "  \"runs\": [";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"units\": " << r.units << ", \"s\": " << Num(r.s)
       << ", \"build_seconds\": " << Num(r.build_seconds)
       << ", \"run_seconds\": " << Num(r.run_seconds)
       << ", \"sim_events\": " << r.sim_events
       << ", \"events_per_sec\": " << Num(r.events_per_sec)
       << ", \"server_seconds\": " << Num(r.server_seconds)
       << ", \"baseline_event_model\": " << r.baseline_event_model
       << ", \"events_eliminated\": " << r.events_eliminated
       << ", \"quiet_report_intervals\": " << r.quiet_report_intervals
       << ", \"quiet_skipped_intervals\": " << r.quiet_skipped_intervals
       << ", \"hit_ratio\": " << Num(r.hit_ratio)
       << ", \"queries_answered\": " << r.queries_answered
       << ", \"measured_sleep_fraction\": " << Num(r.measured_sleep_fraction)
       << "}";
  }
  os << (runs.empty() ? "]" : "\n  ]") << "\n}\n";
}

int Main(int argc, char** argv) {
  const BenchArgs args = ParseArgs(argc, argv);
  std::vector<RunRecord> runs;

  for (uint64_t units : args.units) {
    for (double s : args.sleep_probs) {
      Cell cell(MakeConfig(units, s, args.seed));

      auto t0 = std::chrono::steady_clock::now();
      Status st = cell.Build();
      const double build_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (st.ok()) {
        t0 = std::chrono::steady_clock::now();
        st = cell.Run(args.warmup, args.measure);
      }
      if (!st.ok()) {
        std::fprintf(stderr, "units=%llu s=%g failed: %s\n",
                     static_cast<unsigned long long>(units), s,
                     st.ToString().c_str());
        return 1;
      }
      RunRecord rec;
      rec.units = units;
      rec.s = s;
      rec.build_seconds = build_seconds;
      rec.run_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const CellResult result = cell.result();
      rec.sim_events = result.sim_events;
      rec.events_per_sec = rec.run_seconds > 0.0
                               ? static_cast<double>(result.sim_events) /
                                     rec.run_seconds
                               : 0.0;
      // Per-interval-engine model: one ticker event per unit-interval (ticks
      // at T_0..T_{W+M}) plus one heap event per query arrival. The measured
      // phase counts arrivals exactly; warmup's share is extrapolated by run
      // length (the process is stationary).
      uint64_t measured_arrivals = 0;
      for (const MobileUnit* unit : cell.units()) {
        measured_arrivals += unit->stats().queries_issued;
      }
      const double intervals_total =
          static_cast<double>(args.warmup + args.measure) + 0.5;
      const double arrivals_total =
          static_cast<double>(measured_arrivals) * intervals_total /
          static_cast<double>(args.measure);
      rec.baseline_event_model =
          units * (args.warmup + args.measure + 1) +
          static_cast<uint64_t>(arrivals_total);
      rec.events_eliminated = static_cast<int64_t>(rec.baseline_event_model) -
                              static_cast<int64_t>(rec.sim_events);
      rec.server_seconds = cell.server_wall_seconds();
      rec.quiet_report_intervals = result.quiet_report_intervals;
      rec.quiet_skipped_intervals = result.quiet_skipped_intervals;
      rec.hit_ratio = result.hit_ratio;
      rec.queries_answered = result.queries_answered;
      rec.measured_sleep_fraction = result.measured_sleep_fraction;
      std::printf(
          "units=%-8llu s=%-5g build %6.2fs  run %7.2fs  server %6.3fs  "
          "%9llu events (%.3g/s)  eliminated %lld  quiet %llu/%llu  "
          "sleep=%.3f  h=%.4f\n",
          static_cast<unsigned long long>(units), s, rec.build_seconds,
          rec.run_seconds, rec.server_seconds,
          static_cast<unsigned long long>(rec.sim_events), rec.events_per_sec,
          static_cast<long long>(rec.events_eliminated),
          static_cast<unsigned long long>(rec.quiet_skipped_intervals),
          static_cast<unsigned long long>(rec.quiet_report_intervals),
          rec.measured_sleep_fraction, rec.hit_ratio);
      std::fflush(stdout);
      runs.push_back(std::move(rec));
    }
  }

  std::ofstream out(args.json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", args.json_path.c_str());
    return 1;
  }
  WriteJson(args, runs, out);
  std::printf("bench record written to %s\n", args.json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace mobicache

int main(int argc, char** argv) { return mobicache::Main(argc, argv); }
