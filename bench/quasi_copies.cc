// §7 ablation — quasi-copies. Two experiments against a plain-AT baseline
// on a Scenario-1-shaped cell with elevated update rate (so reports have
// substance):
//
//  1. Delay condition: sweep alpha = j*L. Items enter reports only when the
//     oldest outstanding copy approaches its staleness budget, shrinking
//     reports and invalidating less aggressively at the cost of copies up
//     to alpha old.
//  2. Arithmetic condition: sweep epsilon over random-walk-valued items.
//     Changes are reported only when the value drifted more than epsilon
//     since its last report.

#include <iostream>

#include "core/coherency.h"
#include "exp/cell.h"
#include "util/table.h"

namespace mobicache {
namespace {

CellConfig BaseConfig() {
  CellConfig config;
  config.model.n = 1000;
  config.model.lambda = 0.1;
  config.model.mu = 2e-3;
  config.model.L = 10.0;
  config.model.s = 0.2;
  config.strategy = StrategyKind::kQuasiAt;
  config.num_units = 20;
  config.hotspot_size = 20;
  config.seed = 55;
  // The cached (hot-spot) items churn fast — that is where the delay
  // condition can coalesce several changes into one report entry; the rest
  // of the database updates at the background rate.
  config.update_rates.assign(config.model.n, 2e-3);
  for (uint64_t i = 0; i < config.hotspot_size; ++i) {
    config.update_rates[i] = 0.02;
  }
  return config;
}

CellResult RunOne(const CellConfig& config) {
  Cell cell(config);
  if (!cell.Build().ok() || !cell.Run(50, 400).ok()) {
    std::cerr << "cell failed\n";
    std::exit(1);
  }
  return cell.result();
}

int Run() {
  std::cout << "Quasi-copies (S7): relaxing coherency to shrink reports\n"
               "Workload: Scenario-1 shape, mu = 2e-3, s = 0.2, AT-family "
               "strategies\n\n";

  {
    std::cout << "Delay condition: alpha = j * L\n\n";
    TablePrinter table({"alpha(s)", "Bc.sim(bits)", "report entries/int",
                        "hit ratio", "uplink queries", "mean latency(s)"});
    {
      CellConfig config = BaseConfig();
      config.strategy = StrategyKind::kAt;  // plain-AT reference
      const CellResult r = RunOne(config);
      table.AddRow({"AT (exact)", TablePrinter::Num(r.avg_report_bits),
                    TablePrinter::Num(r.avg_report_bits / 10.0, 3),
                    TablePrinter::Num(r.hit_ratio),
                    TablePrinter::Int(r.channel.uplink_query_count),
                    TablePrinter::Num(r.mean_answer_latency, 3)});
    }
    // j = 1 keeps plain-AT timing but only reports items somebody holds.
    for (uint64_t j : {1, 2, 4, 8, 16}) {
      CellConfig config = BaseConfig();
      config.quasi_alpha_intervals = j;
      const CellResult r = RunOne(config);
      table.AddRow(
          {TablePrinter::Num(config.model.L * static_cast<double>(j), 4),
           TablePrinter::Num(r.avg_report_bits),
           TablePrinter::Num(r.avg_report_bits / 10.0, 3),  // id_bits = 10
           TablePrinter::Num(r.hit_ratio),
           TablePrinter::Int(r.channel.uplink_query_count),
           TablePrinter::Num(r.mean_answer_latency, 3)});
    }
    table.RenderText(std::cout);
    std::cout << "\nLarger alpha defers re-reporting of re-fetched items: "
                 "reports shrink while\nanswers may lag the server by up to "
                 "alpha seconds (bounded-staleness contract).\n\n";
  }

  {
    std::cout << "Arithmetic condition: report only drifts > epsilon "
                 "(random-walk steps in [-1, 1])\n\n";
    TablePrinter table({"epsilon", "Bc.sim(bits)", "hit ratio",
                        "uplink queries"});
    for (double eps : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      CellConfig config = BaseConfig();
      config.quasi_arithmetic = true;
      config.quasi_epsilon = eps;
      config.numeric_step_scale = 1.0;
      const CellResult r = RunOne(config);
      table.AddRow({TablePrinter::Num(eps, 3),
                    TablePrinter::Num(r.avg_report_bits),
                    TablePrinter::Num(r.hit_ratio),
                    TablePrinter::Int(r.channel.uplink_query_count)});
    }
    table.RenderText(std::cout);
    std::cout << "\nepsilon = 0 reports every change (plain AT); growing "
                 "epsilon suppresses small\ndrifts, shrinking reports and "
                 "raising the hit ratio at bounded value error.\n";
  }
  return 0;
}

}  // namespace
}  // namespace mobicache

int main() { return mobicache::Run(); }
