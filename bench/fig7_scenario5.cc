// Reproduces Figure 7 (Scenario 5): workaholics (s = 0) with the update rate
// mu swept in [1e-4, 2e-4]. Expected shape (paper): AT best across the
// range, SIG marginally below it, TS degrading rapidly as mu grows.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mobicache;
  SweepOptions defaults;
  defaults.points = 11;
  defaults.warmup_intervals = 50;
  defaults.measure_intervals = 1500;
  return RunFigureBench(PaperScenario::kScenario5,
                        {StrategyKind::kTs, StrategyKind::kAt,
                         StrategyKind::kSig},
                        argc, argv, defaults);
}
