// Reproduces Figure 4 (Scenario 2): effectiveness vs. s with a 1M-item
// database and a 1 Mb/s channel; TS stays competitive only because the
// window shrinks to k = 10.
// Expected shape (paper): same ordering as Figure 3.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mobicache;
  SweepOptions defaults;
  defaults.points = 6;
  defaults.warmup_intervals = 30;
  defaults.measure_intervals = 150;
  defaults.num_units = 10;
  return RunFigureBench(PaperScenario::kScenario2,
                        {StrategyKind::kTs, StrategyKind::kAt,
                         StrategyKind::kSig, StrategyKind::kNoCache},
                        argc, argv, defaults);
}
