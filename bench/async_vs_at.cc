// §3.2 equivalence study: AT vs asynchronous per-update invalidation
// broadcast. The paper argues the two are equivalent — the same identifiers
// go downlink and both lose the cache across disconnections; AT merely
// batches them into periodic reports (with a latency guarantee), while the
// asynchronous mode answers immediately but guarantees nothing about
// waiting times. The table quantifies all of that across sleep levels.

#include <iostream>

#include "exp/cell.h"
#include "util/table.h"

namespace mobicache {
namespace {

CellResult RunOne(StrategyKind kind, double s) {
  CellConfig config;
  config.model.n = 1000;
  config.model.mu = 1e-3;
  config.model.s = s;
  config.strategy = kind;
  config.num_units = 20;
  config.hotspot_size = 20;
  config.seed = 31;
  Cell cell(config);
  if (!cell.Build().ok() || !cell.Run(40, 500).ok()) {
    std::cerr << "cell failed\n";
    std::exit(1);
  }
  return cell.result();
}

int Run() {
  std::cout << "AT vs asynchronous invalidation broadcast (S3.2 "
               "equivalence)\n(n = 1000, mu = 1e-3; 500 measured "
               "intervals)\n\n";
  TablePrinter table({"s", "mode", "invalidation bits", "hit ratio",
                      "mean latency(s)", "uplink queries"});
  for (double s : {0.0, 0.3, 0.6}) {
    for (StrategyKind kind : {StrategyKind::kAt, StrategyKind::kAsync}) {
      const CellResult r = RunOne(kind, s);
      table.AddRow({TablePrinter::Num(s, 2),
                    std::string(StrategyName(kind)),
                    TablePrinter::Int(r.channel.report_bits),
                    TablePrinter::Num(r.hit_ratio),
                    TablePrinter::Num(r.mean_answer_latency, 4),
                    TablePrinter::Int(r.channel.uplink_query_count)});
    }
  }
  table.RenderText(std::cout);
  std::cout << "\nThe invalidation traffic is near-identical (AT saves a "
               "little by deduplicating\nwithin an interval). Async answers "
               "with zero latency; AT's periodic report\nguarantees a bound "
               "(~L plus naps) that async cannot give a disconnected "
               "client.\nPer-query hit ratios differ for accounting "
               "reasons: async serves repeats\nindividually and answers "
               "before in-interval updates land.\n";
  return 0;
}

}  // namespace
}  // namespace mobicache

int main() { return mobicache::Run(); }
