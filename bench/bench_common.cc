#include "bench_common.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <fstream>
#include <new>
#include <string>

#include "bench_json.h"
#include "util/simd.h"
#include "util/thread_pool.h"

// Counting global allocator: every bench linking bench_common reports its
// heap allocation count in the BENCH record, so an allocation regression on
// a hot path shows up as a step in the per-commit artifact trail, not just
// as a throughput wobble.
namespace {
std::atomic<uint64_t> g_new_calls{0};
}  // namespace

// noinline keeps the malloc/free bodies opaque at new/delete expression
// sites, which would otherwise trip GCC's -Wmismatched-new-delete.
#if defined(__GNUC__)
#define MOBICACHE_BENCH_NOINLINE __attribute__((noinline))
#else
#define MOBICACHE_BENCH_NOINLINE
#endif

MOBICACHE_BENCH_NOINLINE void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
MOBICACHE_BENCH_NOINLINE void* operator new[](std::size_t size) {
  return ::operator new(size);
}
MOBICACHE_BENCH_NOINLINE void operator delete(void* p) noexcept {
  std::free(p);
}
MOBICACHE_BENCH_NOINLINE void operator delete[](void* p) noexcept {
  std::free(p);
}
MOBICACHE_BENCH_NOINLINE void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
MOBICACHE_BENCH_NOINLINE void operator delete[](void* p,
                                                std::size_t) noexcept {
  std::free(p);
}

namespace mobicache {

uint64_t BenchHeapAllocations() {
  return g_new_calls.load(std::memory_order_relaxed);
}

namespace {

/// Matches --<name>=<value> and parses the value as a non-negative integer.
/// Exits with a diagnostic on garbage ("--points=abc"), a negative sign, an
/// empty value, trailing junk ("--points=12x"), or overflow: strtoull alone
/// reports none of these, it just yields 0 or wraps, which used to surface
/// as a misleading downstream error.
bool ParseFlag(const char* arg, const char* name, uint64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  const char* value = arg + len + 1;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || value[0] == '-' || errno == ERANGE) {
    std::fprintf(stderr, "invalid value for %s: '%s' (expected a "
                 "non-negative integer)\n", name, value);
    std::exit(2);
  }
  *out = parsed;
  return true;
}

/// Narrows a parsed flag to int, rejecting values an int cannot hold.
int ToIntFlag(const char* name, uint64_t value) {
  if (value > static_cast<uint64_t>(INT_MAX)) {
    std::fprintf(stderr, "value for %s is too large: %llu (max %d)\n", name,
                 static_cast<unsigned long long>(value), INT_MAX);
    std::exit(2);
  }
  return static_cast<int>(value);
}

std::string BenchNameFromArgv0(const char* argv0) {
  std::string name(argv0);
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name.empty() ? std::string("bench") : name;
}

}  // namespace

SweepOptions ParseSweepArgs(int argc, char** argv, SweepOptions defaults,
                            std::string* csv_path, std::string* json_path) {
  SweepOptions options = defaults;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (std::strcmp(arg, "--no-sim") == 0) {
      options.simulate = false;
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      if (csv_path != nullptr) *csv_path = arg + 6;
    } else if (std::strcmp(arg, "--json") == 0) {
      if (json_path != nullptr) *json_path = "auto";
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      if (json_path != nullptr) *json_path = arg + 7;
    } else if (ParseFlag(arg, "--points", &value)) {
      options.points = ToIntFlag("--points", value);
    } else if (ParseFlag(arg, "--measure", &value)) {
      options.measure_intervals = value;
    } else if (ParseFlag(arg, "--warmup", &value)) {
      options.warmup_intervals = value;
    } else if (ParseFlag(arg, "--units", &value)) {
      options.num_units = value;
    } else if (ParseFlag(arg, "--hotspot", &value)) {
      options.hotspot_size = value;
    } else if (ParseFlag(arg, "--seed", &value)) {
      options.seed = value;
    } else if (ParseFlag(arg, "--threads", &value)) {
      options.threads = ToIntFlag("--threads", value);
    } else if (ParseFlag(arg, "--shards", &value)) {
      options.shards = ToIntFlag("--shards", value);
      if (options.shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1 (got %d)\n",
                     options.shards);
        std::exit(2);
      }
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--points=N] [--measure=N] "
                   "[--warmup=N] [--units=N] [--hotspot=N] [--seed=N] "
                   "[--threads=N] [--shards=N] [--no-sim] [--csv=PATH] "
                   "[--json[=PATH]]\n",
                   arg, argv[0]);
      std::exit(2);
    }
  }
  return options;
}

int RunFigureBench(PaperScenario scenario,
                   const std::vector<StrategyKind>& strategies, int argc,
                   char** argv, SweepOptions defaults) {
  std::string csv_path;
  std::string json_path;
  const SweepOptions options =
      ParseSweepArgs(argc, argv, defaults, &csv_path, &json_path);
  const ModelParams p = ScenarioParams(scenario);
  const ScenarioSweep spec = ScenarioSweepSpec(scenario);
  const int threads_used = options.threads == 0
                               ? static_cast<int>(ThreadPool::DefaultThreadCount())
                               : options.threads;

  std::cout << ScenarioLabel(scenario) << "\n";
  std::printf(
      "lambda=%g mu=%g L=%g n=%llu W=%g bT=%llu k=%llu f=%u g=%u; sweeping "
      "%s in [%g, %g]\n",
      p.lambda, p.mu, p.L, static_cast<unsigned long long>(p.n), p.W,
      static_cast<unsigned long long>(p.bT),
      static_cast<unsigned long long>(p.k), p.f, p.g,
      spec.sweeps_sleep ? "s" : "mu", spec.lo, spec.hi);
  if (options.simulate) {
    std::printf(
        "simulation: %llu units, hotspot %llu, %llu+%llu intervals, seed "
        "%llu, %d thread%s\n\n",
        static_cast<unsigned long long>(options.num_units),
        static_cast<unsigned long long>(options.hotspot_size),
        static_cast<unsigned long long>(options.warmup_intervals),
        static_cast<unsigned long long>(options.measure_intervals),
        static_cast<unsigned long long>(options.seed), threads_used,
        threads_used == 1 ? "" : "s");
  } else {
    std::printf("analytic model only (--no-sim)\n\n");
  }

  const auto start = std::chrono::steady_clock::now();
  const uint64_t allocs_before = BenchHeapAllocations();
  const StatusOr<SweepResult> result =
      RunScenarioSweep(scenario, strategies, options);
  const uint64_t sweep_allocations = BenchHeapAllocations() - allocs_before;
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!result.ok()) {
    std::cerr << "sweep failed: " << result.status().ToString() << "\n";
    return 1;
  }
  PrintSweepTables(*result, std::cout);
  std::printf("wall %.3fs  cells %llu  events %llu  (%.3g events/s)\n",
              wall_seconds,
              static_cast<unsigned long long>(result->simulated_cells),
              static_cast<unsigned long long>(result->sim_events),
              wall_seconds > 0.0
                  ? static_cast<double>(result->sim_events) / wall_seconds
                  : 0.0);
  double update_seconds = 0.0;
  uint64_t updates_applied = 0;
  uint64_t journal_peak = 0;
  uint64_t retention_cells[3] = {0, 0, 0};  // none, digest, full
  for (const SweepResult::CellTiming& t : result->cell_timings) {
    update_seconds += t.update_seconds;
    updates_applied += t.updates_applied;
    journal_peak += t.journal_bytes_peak;
    if (std::strcmp(t.retention_class, "none") == 0) {
      ++retention_cells[0];
    } else if (std::strcmp(t.retention_class, "digest") == 0) {
      ++retention_cells[1];
    } else {
      ++retention_cells[2];
    }
  }
  if (updates_applied > 0) {
    std::printf("updates %llu  (%.3fs batched drain, %.1f%% of wall)  "
                "kernel %s\n",
                static_cast<unsigned long long>(updates_applied),
                update_seconds,
                wall_seconds > 0.0 ? 100.0 * update_seconds / wall_seconds
                                   : 0.0,
                simd::ActiveKernelName());
  }
  if (!result->cell_timings.empty()) {
    std::printf(
        "journal peak %.2f MB summed over cells  "
        "(retention: %llu full, %llu digest, %llu none)\n",
        static_cast<double>(journal_peak) / (1024.0 * 1024.0),
        static_cast<unsigned long long>(retention_cells[2]),
        static_cast<unsigned long long>(retention_cells[1]),
        static_cast<unsigned long long>(retention_cells[0]));
  }
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::cerr << "cannot open " << csv_path << "\n";
      return 1;
    }
    WriteSweepCsv(*result, csv);
    std::cout << "CSV written to " << csv_path << "\n";
  }
  if (!json_path.empty()) {
    const std::string bench_name = BenchNameFromArgv0(argv[0]);
    const std::string path =
        json_path == "auto" ? "BENCH_" + bench_name + ".json" : json_path;
    BenchRecord record =
        MakeBenchRecord(bench_name, std::string(ScenarioLabel(scenario)),
                        *result, options, threads_used, wall_seconds);
    record.heap_allocations = sweep_allocations;
    const Status st = WriteBenchJson(record, path);
    if (!st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    std::cout << "bench record written to " << path << "\n";
  }
  return 0;
}

}  // namespace mobicache
