#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <fstream>
#include <string>

namespace mobicache {

namespace {

bool ParseFlag(const char* arg, const char* name, uint64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtoull(arg + len + 1, nullptr, 10);
  return true;
}

}  // namespace

SweepOptions ParseSweepArgs(int argc, char** argv, SweepOptions defaults,
                            std::string* csv_path) {
  SweepOptions options = defaults;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (std::strcmp(arg, "--no-sim") == 0) {
      options.simulate = false;
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      if (csv_path != nullptr) *csv_path = arg + 6;
    } else if (ParseFlag(arg, "--points", &value)) {
      options.points = static_cast<int>(value);
    } else if (ParseFlag(arg, "--measure", &value)) {
      options.measure_intervals = value;
    } else if (ParseFlag(arg, "--warmup", &value)) {
      options.warmup_intervals = value;
    } else if (ParseFlag(arg, "--units", &value)) {
      options.num_units = value;
    } else if (ParseFlag(arg, "--hotspot", &value)) {
      options.hotspot_size = value;
    } else if (ParseFlag(arg, "--seed", &value)) {
      options.seed = value;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--points=N] [--measure=N] "
                   "[--warmup=N] [--units=N] [--hotspot=N] [--seed=N] "
                   "[--no-sim] [--csv=PATH]\n",
                   arg, argv[0]);
      std::exit(2);
    }
  }
  return options;
}

int RunFigureBench(PaperScenario scenario,
                   const std::vector<StrategyKind>& strategies, int argc,
                   char** argv, SweepOptions defaults) {
  std::string csv_path;
  const SweepOptions options =
      ParseSweepArgs(argc, argv, defaults, &csv_path);
  const ModelParams p = ScenarioParams(scenario);
  const ScenarioSweep spec = ScenarioSweepSpec(scenario);

  std::cout << ScenarioLabel(scenario) << "\n";
  std::printf(
      "lambda=%g mu=%g L=%g n=%llu W=%g bT=%llu k=%llu f=%u g=%u; sweeping "
      "%s in [%g, %g]\n",
      p.lambda, p.mu, p.L, static_cast<unsigned long long>(p.n), p.W,
      static_cast<unsigned long long>(p.bT),
      static_cast<unsigned long long>(p.k), p.f, p.g,
      spec.sweeps_sleep ? "s" : "mu", spec.lo, spec.hi);
  if (options.simulate) {
    std::printf(
        "simulation: %llu units, hotspot %llu, %llu+%llu intervals, seed "
        "%llu\n\n",
        static_cast<unsigned long long>(options.num_units),
        static_cast<unsigned long long>(options.hotspot_size),
        static_cast<unsigned long long>(options.warmup_intervals),
        static_cast<unsigned long long>(options.measure_intervals),
        static_cast<unsigned long long>(options.seed));
  } else {
    std::printf("analytic model only (--no-sim)\n\n");
  }

  const StatusOr<SweepResult> result =
      RunScenarioSweep(scenario, strategies, options);
  if (!result.ok()) {
    std::cerr << "sweep failed: " << result.status().ToString() << "\n";
    return 1;
  }
  PrintSweepTables(*result, std::cout);
  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    if (!csv) {
      std::cerr << "cannot open " << csv_path << "\n";
      return 1;
    }
    WriteSweepCsv(*result, csv);
    std::cout << "CSV written to " << csv_path << "\n";
  }
  return 0;
}

}  // namespace mobicache
