// Reproduces Figure 3 (Scenario 1): effectiveness vs. sleep probability s
// under infrequent updates on a small database / narrow channel.
// Expected shape (paper): SIG best across the whole range, TS intermediate,
// AT decaying rapidly with s, no-caching pinned near zero.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace mobicache;
  SweepOptions defaults;
  defaults.points = 11;
  defaults.warmup_intervals = 50;
  defaults.measure_intervals = 1500;
  return RunFigureBench(PaperScenario::kScenario1,
                        {StrategyKind::kTs, StrategyKind::kAt,
                         StrategyKind::kSig, StrategyKind::kNoCache},
                        argc, argv, defaults);
}
