#include "bench_json.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/simd.h"
#include "util/thread_pool.h"

namespace mobicache {

namespace {

void AppendEscaped(const std::string& s, std::ostream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string Num(double v) {
  // Shortest round-trippable representation keeps records diffable.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

BenchRecord MakeBenchRecord(const std::string& name,
                            const std::string& scenario,
                            const SweepResult& result,
                            const SweepOptions& options, int threads_used,
                            double wall_seconds) {
  BenchRecord record;
  record.name = name;
  record.scenario = scenario;
  record.wall_seconds = wall_seconds;
  record.sim_events = result.sim_events;
  record.cells = result.simulated_cells;
  if (wall_seconds > 0.0) {
    record.events_per_sec =
        static_cast<double>(result.sim_events) / wall_seconds;
    record.cells_per_sec =
        static_cast<double>(result.simulated_cells) / wall_seconds;
  }
  record.quiet_report_intervals = result.quiet_report_intervals;
  record.quiet_skipped_intervals = result.quiet_skipped_intervals;
  record.threads = threads_used;
  record.hardware_concurrency = ThreadPool::DefaultThreadCount();
  record.points = options.points;
  record.num_units = options.num_units;
  record.warmup_intervals = options.warmup_intervals;
  record.measure_intervals = options.measure_intervals;
  record.seed = options.seed;
  record.simulate = options.simulate;
  record.shards = options.shards;
  record.simd_kernel = simd::ActiveKernelName();
  record.breakdown.reserve(result.cell_timings.size());
  for (const SweepResult::CellTiming& t : result.cell_timings) {
    BenchRecord::Breakdown b;
    b.label = std::string(StrategyName(t.kind)) + "@x=" + Num(t.x);
    b.seconds = t.wall_seconds;
    b.server_seconds = t.server_seconds;
    b.shard_seconds = t.shard_seconds;
    b.replay_seconds = t.replay_seconds;
    b.replay_records = t.replay_records;
    b.update_seconds = t.update_seconds;
    b.updates_applied = t.updates_applied;
    b.retention_class = t.retention_class;
    b.journal_bytes_peak = t.journal_bytes_peak;
    record.server_seconds += t.server_seconds;
    record.shard_seconds += t.shard_seconds;
    record.replay_seconds += t.replay_seconds;
    record.replay_records += t.replay_records;
    record.update_seconds += t.update_seconds;
    record.updates_applied += t.updates_applied;
    record.journal_bytes_peak += t.journal_bytes_peak;
    record.breakdown.push_back(std::move(b));
  }
  return record;
}

std::string BenchRecordToJson(const BenchRecord& r) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"name\": ";
  AppendEscaped(r.name, os);
  os << ",\n  \"scenario\": ";
  AppendEscaped(r.scenario, os);
  os << ",\n  \"wall_seconds\": " << Num(r.wall_seconds);
  os << ",\n  \"sim_events\": " << r.sim_events;
  os << ",\n  \"cells\": " << r.cells;
  os << ",\n  \"events_per_sec\": " << Num(r.events_per_sec);
  os << ",\n  \"cells_per_sec\": " << Num(r.cells_per_sec);
  os << ",\n  \"quiet_report_intervals\": " << r.quiet_report_intervals;
  os << ",\n  \"quiet_skipped_intervals\": " << r.quiet_skipped_intervals;
  os << ",\n  \"heap_allocations\": " << r.heap_allocations;
  os << ",\n  \"threads\": " << r.threads;
  os << ",\n  \"hardware_concurrency\": " << r.hardware_concurrency;
  os << ",\n  \"points\": " << r.points;
  os << ",\n  \"num_units\": " << r.num_units;
  os << ",\n  \"warmup_intervals\": " << r.warmup_intervals;
  os << ",\n  \"measure_intervals\": " << r.measure_intervals;
  os << ",\n  \"seed\": " << r.seed;
  os << ",\n  \"simulate\": " << (r.simulate ? "true" : "false");
  os << ",\n  \"shards\": " << r.shards;
  os << ",\n  \"simd_kernel\": ";
  AppendEscaped(r.simd_kernel, os);
  os << ",\n  \"server_seconds\": " << Num(r.server_seconds);
  os << ",\n  \"shard_seconds\": " << Num(r.shard_seconds);
  os << ",\n  \"replay_seconds\": " << Num(r.replay_seconds);
  os << ",\n  \"replay_records\": " << r.replay_records;
  os << ",\n  \"update_seconds\": " << Num(r.update_seconds);
  os << ",\n  \"updates_applied\": " << r.updates_applied;
  os << ",\n  \"journal_bytes_peak\": " << r.journal_bytes_peak;
  os << ",\n  \"breakdown\": [";
  for (size_t i = 0; i < r.breakdown.size(); ++i) {
    const BenchRecord::Breakdown& b = r.breakdown[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"label\": ";
    AppendEscaped(b.label, os);
    os << ", \"seconds\": " << Num(b.seconds);
    os << ", \"server_seconds\": " << Num(b.server_seconds);
    os << ", \"shard_seconds\": " << Num(b.shard_seconds);
    os << ", \"replay_seconds\": " << Num(b.replay_seconds);
    os << ", \"replay_records\": " << b.replay_records;
    os << ", \"update_seconds\": " << Num(b.update_seconds);
    os << ", \"updates_applied\": " << b.updates_applied;
    os << ", \"retention_class\": ";
    AppendEscaped(b.retention_class, os);
    os << ", \"journal_bytes_peak\": " << b.journal_bytes_peak << "}";
  }
  os << (r.breakdown.empty() ? "]" : "\n  ]");
  os << "\n}\n";
  return os.str();
}

Status WriteBenchJson(const BenchRecord& record, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  out << BenchRecordToJson(record);
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

}  // namespace mobicache
