// §10 extension bench — hybrid SIG. Workload built to kill plain SIG the
// way Scenarios 2/4/5 do: the per-interval change volume exceeds the
// signature design point f, but the churn is concentrated on a small hot
// set. Broadcasting that hot set individually (a handful of id entries)
// and signing only the cold remainder restores SIG's sleeper robustness.

#include <iostream>

#include "exp/cell.h"
#include "util/table.h"

namespace mobicache {
namespace {

CellResult RunOne(StrategyKind kind, double s) {
  CellConfig config;
  config.model.n = 1000;
  config.model.lambda = 0.1;
  config.model.f = 5;  // designed for 5 differences...
  config.model.s = s;
  config.strategy = kind;
  config.num_units = 20;
  config.hotspot_size = 20;
  config.seed = 17;
  // ...but ~2 changes per interval land on 10 hot items, plus a slow cold
  // background, so naps quickly accumulate more than f changes.
  config.update_rates.assign(config.model.n, 5e-5);
  for (int i = 0; i < 10; ++i) config.update_rates[i] = 0.02;
  config.hybrid_hot_set = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  Cell cell(config);
  if (!cell.Build().ok() || !cell.Run(40, 500).ok()) {
    std::cerr << "cell failed\n";
    std::exit(1);
  }
  return cell.result();
}

int Run() {
  std::cout
      << "Hybrid SIG (S10): hot items broadcast individually, cold items "
         "signed\n(n = 1000, f = 5, 10 hot churners at mu = 0.02, cold "
         "background at 5e-5)\n\n";
  TablePrinter table({"s", "strategy", "hit ratio", "Bc(bits)",
                      "effectiveness"});
  for (double s : {0.0, 0.4, 0.8}) {
    for (StrategyKind kind : {StrategyKind::kSig, StrategyKind::kAt,
                              StrategyKind::kHybridSig}) {
      const CellResult r = RunOne(kind, s);
      table.AddRow({TablePrinter::Num(s, 2),
                    std::string(StrategyName(kind)),
                    TablePrinter::Num(r.hit_ratio),
                    TablePrinter::Num(r.avg_report_bits),
                    TablePrinter::Num(r.effectiveness)});
    }
  }
  table.RenderText(std::cout);
  std::cout << "\nPlain SIG's syndrome floods whenever a nap accumulates "
               "more than f changes\n(hot churn makes that constant); AT is "
               "exact but amnesic across naps. The\nhybrid pays a few id "
               "entries per report to keep the signatures clean, and\n"
               "keeps SIG's nap-robust revalidation for the cold majority "
               "of the cache.\n";
  return 0;
}

}  // namespace
}  // namespace mobicache

int main() { return mobicache::Run(); }
