// Reproduces the two asymptotic-analysis tables of §5:
//
//  Table A: limits of q0, p0 and the hit ratios as s -> 0 (workaholics) and
//           s -> 1 (sleepers), shown as numeric convergence of the exact
//           formulas next to the paper's closed-form limits.
//  Table B: hit-ratio behaviour as u0 -> 1 (infrequent updates), where TS
//           approaches 1 - s^k, AT approaches (1-p0)/(1-q0), and SIG
//           approaches p_nf (1-p0)/(1-p0).
//
// The qualitative §5 conclusions are printed and checked at the end:
// workaholics -> AT wins; sleepers -> TS/SIG over AT, eventually no-caching.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/model.h"
#include "analysis/scenarios.h"
#include "util/table.h"

namespace mobicache {
namespace {

int Run() {
  ModelParams base = ScenarioParams(PaperScenario::kScenario1);
  base.k = 10;  // make the s^k terms visible at double precision

  std::cout << "S5 Table A: limits as s -> 0 and s -> 1 "
               "(lambda L = 1, mu L = 1e-3, k = 10)\n\n";
  {
    TablePrinter table({"parameter", "paper s->0", "exact s=1e-6",
                        "paper s->1", "exact s=1-1e-6"});
    auto at = [&](double s) {
      ModelParams p = base;
      p.s = s;
      return p;
    };
    const ModelParams p0m = at(1e-6), p1m = at(1.0 - 1e-6);
    const IntervalProbabilities a = ComputeIntervalProbabilities(p0m);
    const IntervalProbabilities b = ComputeIntervalProbabilities(p1m);
    const double el = std::exp(-base.lambda * base.L);

    table.AddRow({"q0", TablePrinter::Num(el), TablePrinter::Num(a.q0),
                  "0", TablePrinter::Num(b.q0)});
    table.AddRow({"p0", TablePrinter::Num(el), TablePrinter::Num(a.p0),
                  "1", TablePrinter::Num(b.p0)});
    // The paper's s->0 limit for all hit ratios: (1 - e^{-lambda L}) e^{-mu L}
    // (it drops the common denominator); the exact formulas keep it.
    const double paper_limit = (1.0 - el) * std::exp(-base.mu * base.L);
    table.AddRow({"h_TS", TablePrinter::Num(paper_limit) + " (approx)",
                  TablePrinter::Num(TsHitRatioBounds(p0m).mid()), "0",
                  TablePrinter::Num(TsHitRatioBounds(p1m).mid())});
    table.AddRow({"h_AT", TablePrinter::Num(paper_limit) + " (approx)",
                  TablePrinter::Num(AtHitRatio(p0m)), "0",
                  TablePrinter::Num(AtHitRatio(p1m))});
    table.AddRow({"h_SIG",
                  TablePrinter::Num(paper_limit) + " * pnf (approx)",
                  TablePrinter::Num(SigHitRatio(p0m)), "0",
                  TablePrinter::Num(SigHitRatio(p1m))});
    table.RenderText(std::cout);
  }

  std::cout << "\nS5 Table B: behaviour as u0 -> 1 (mu -> 0), s = 0.5, "
               "k = 10\n\n";
  {
    TablePrinter table({"parameter", "paper u0->1", "exact mu=1e-9"});
    ModelParams p = base;
    p.s = 0.5;
    p.mu = 1e-9;
    const IntervalProbabilities pr = ComputeIntervalProbabilities(p);
    const double sk = std::pow(p.s, static_cast<double>(p.k));
    table.AddRow({"h_TS (1 - s^k band)",
                  TablePrinter::Num(1.0 - sk) + " .. " +
                      TablePrinter::Num(1.0 - sk * p.s),
                  TablePrinter::Num(TsHitRatioBounds(p).mid())});
    table.AddRow({"h_AT ((1-p0)/(1-q0))",
                  TablePrinter::Num((1.0 - pr.p0) / (1.0 - pr.q0)),
                  TablePrinter::Num(AtHitRatio(p))});
    table.AddRow({"h_SIG (pnf (1-p0)/(1-p0 u0))",
                  TablePrinter::Num(SigNoFalseAlarmProbability(p) *
                                    (1.0 - pr.p0) / (1.0 - pr.p0)),
                  TablePrinter::Num(SigHitRatio(p))});
    table.RenderText(std::cout);
  }

  std::cout << "\nS5 conclusions (checked numerically on Scenario 1 "
               "parameters):\n";
  {
    ModelParams p = ScenarioParams(PaperScenario::kScenario1);
    p.s = 0.0;
    const bool c1 = EvalAt(p).effectiveness > EvalTs(p).effectiveness &&
                    EvalAt(p).effectiveness > EvalSig(p).effectiveness;
    std::printf("  workaholics (s=0): AT wins in throughput        %s\n",
                c1 ? "[confirmed]" : "[VIOLATED]");
    p.s = 0.6;
    const bool c2 = EvalTs(p).effectiveness > EvalAt(p).effectiveness &&
                    EvalSig(p).effectiveness > EvalAt(p).effectiveness;
    std::printf("  sleepers (s=0.6): TS and SIG outperform AT      %s\n",
                c2 ? "[confirmed]" : "[VIOLATED]");
    ModelParams q = ScenarioParams(PaperScenario::kScenario3);
    q.s = 0.95;
    const bool c3 =
        EvalNoCache(q).effectiveness > EvalAt(q).effectiveness &&
        EvalNoCache(q).effectiveness > EvalSig(q).effectiveness;
    std::printf("  heavy sleepers + updates: no-caching wins        %s\n",
                c3 ? "[confirmed]" : "[VIOLATED]");
    ModelParams r1 = ScenarioParams(PaperScenario::kScenario5);
    ModelParams r2 = r1;
    r2.mu = 2e-4;
    const bool c4 = EvalTs(r2).effectiveness < EvalTs(r1).effectiveness;
    std::printf("  TS loses ground as the update rate grows        %s\n",
                c4 ? "[confirmed]" : "[VIOLATED]");
    if (!(c1 && c2 && c3 && c4)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mobicache

int main() { return mobicache::Run(); }
